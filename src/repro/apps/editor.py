"""The follow-me text editor (paper §5 demo).

Document buffer and cursor migrate with the user; the document data
component's size tracks the buffer so migration cost reflects the real
document, and user preferences (handedness) drive the adaptor's layout
choice at each destination.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.media import make_document
from repro.core.application import Application, register_application_type
from repro.core.components import LogicComponent, PresentationComponent
from repro.core.profiles import UserProfile

EDITOR_LOGIC_BYTES = 180_000
EDITOR_UI_BYTES = 220_000


@register_application_type
class EditorApp(Application):
    """A text editor with a migratable buffer."""

    def __init__(self, name: str, owner: str, **kwargs):
        kwargs.setdefault("device_requirements",
                          {"min_screen_width": 320})
        super().__init__(name, owner, **kwargs)
        self.buffer = ""
        self.cursor = 0
        self.dirty = False

    @classmethod
    def build(cls, name: str, owner: str, initial_text: str = "",
              user_profile: Optional[UserProfile] = None,
              ui_bytes: int = EDITOR_UI_BYTES) -> "EditorApp":
        app = cls(name, owner, user_profile=user_profile)
        app.add_component(LogicComponent("editor-logic", EDITOR_LOGIC_BYTES))
        app.add_component(PresentationComponent(
            "editor-ui", ui_bytes, attributes={"width": 1024, "height": 768}))
        app.add_component(make_document("document", initial_text))
        app.buffer = initial_text
        app.cursor = len(initial_text)
        return app

    # -- editing -----------------------------------------------------------

    def type_text(self, text: str) -> None:
        self.buffer = (self.buffer[:self.cursor] + text
                       + self.buffer[self.cursor:])
        self.cursor += len(text)
        self.dirty = True
        self._sync_document_size()
        self.coordinator.update("length", len(self.buffer))

    def delete_backwards(self, count: int = 1) -> None:
        count = min(count, self.cursor)
        self.buffer = (self.buffer[:self.cursor - count]
                       + self.buffer[self.cursor:])
        self.cursor -= count
        self.dirty = True
        self._sync_document_size()
        self.coordinator.update("length", len(self.buffer))

    def move_cursor(self, position: int) -> None:
        self.cursor = max(0, min(position, len(self.buffer)))

    def save(self) -> None:
        self.dirty = False
        self.coordinator.update("saved_length", len(self.buffer))

    def _sync_document_size(self) -> None:
        if self.has_component("document"):
            document = self.component("document")
            document.size_bytes = max(len(self.buffer.encode("utf-8")), 1)
            document.touch()

    # -- migratable state ---------------------------------------------------------

    def get_app_state(self) -> Dict[str, Any]:
        return {"buffer": self.buffer, "cursor": self.cursor,
                "dirty": self.dirty}

    def restore_app_state(self, state: Dict[str, Any]) -> None:
        self.buffer = state["buffer"]
        self.cursor = state["cursor"]
        self.dirty = state["dirty"]
        self._sync_document_size()
