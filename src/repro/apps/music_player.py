"""The follow-me music player (the paper's first demo, §5).

"It can stop music when listener is out of the room and continue playing
when the listener enters the room within the same space.  In this demo,
application is divided into several functional components, codec logic,
interface, and data files."

Playback position advances with simulated time while the app runs; suspend
freezes it and resume continues from the same position on the new host --
the state-continuity property the snapshot manager guarantees.  When the
music file is not carried (adaptive binding, large file), playback streams
from the source host over a remote URL binding.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.media import make_track
from repro.core.application import Application, register_application_type
from repro.core.components import LogicComponent, PresentationComponent, ResourceBinding
from repro.core.profiles import UserProfile

#: Component sizes measured off a typical small player build.
CODEC_LOGIC_BYTES = 150_000
PLAYER_UI_BYTES = 250_000


@register_application_type
class MusicPlayerApp(Application):
    """A stateful music player application."""

    def __init__(self, name: str, owner: str, **kwargs):
        kwargs.setdefault("device_requirements", {"audio_output": True})
        super().__init__(name, owner, **kwargs)
        self.playing = False
        self.position_ms = 0.0
        self.track_name = ""
        self.track_duration_ms = 0.0
        self.volume = 70
        self.playlist: list = []
        self.track_durations: dict = {}
        self._resumed_at: Optional[float] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, name: str, owner: str, track_bytes: int = 5_000_000,
              track_name: str = "track-01",
              user_profile: Optional[UserProfile] = None
              ) -> "MusicPlayerApp":
        """A fully assembled player: codec logic + UI + track + speaker."""
        return cls.build_with_playlist(name, owner,
                                       [(track_name, track_bytes)],
                                       user_profile=user_profile)

    @classmethod
    def build_with_playlist(cls, name: str, owner: str, tracks,
                            user_profile: Optional[UserProfile] = None
                            ) -> "MusicPlayerApp":
        """A player with several music files (``[(name, bytes), ...]``).

        Each track is its own data component, so adaptive binding decides
        carry-vs-stream per file.
        """
        if not tracks:
            raise ValueError("playlist needs at least one track")
        app = cls(name, owner, user_profile=user_profile)
        app.add_component(LogicComponent("codec", CODEC_LOGIC_BYTES,
                                         entry_point="codec.play"))
        app.add_component(PresentationComponent(
            "player-ui", PLAYER_UI_BYTES,
            attributes={"width": 800, "height": 600}))
        durations = {}
        for track_name, track_bytes in tracks:
            track = make_track(track_name, track_bytes)
            app.add_component(track)
            durations[track_name] = track.duration_ms
        app.add_component(ResourceBinding("speaker-binding",
                                          f"imcl:speaker-of-{name}",
                                          "imcl:Speaker"))
        app.playlist = [t[0] for t in tracks]
        app.track_durations = durations
        app.track_name = app.playlist[0]
        app.track_duration_ms = durations[app.track_name]
        return app

    # -- playback control ---------------------------------------------------------

    def _now(self) -> float:
        if self.middleware is None:
            raise RuntimeError("player is not running on any host")
        return self.middleware.loop.now

    def current_position_ms(self) -> float:
        """Playback position, advancing with simulated time while playing."""
        if self.playing and self._resumed_at is not None:
            elapsed = self._now() - self._resumed_at
            return min(self.position_ms + elapsed, self.track_duration_ms)
        return self.position_ms

    def play(self) -> None:
        if self.playing:
            return
        self.playing = True
        self._resumed_at = self._now()
        self.coordinator.update("playing", True)

    def pause(self) -> None:
        if not self.playing:
            return
        self.position_ms = self.current_position_ms()
        self.playing = False
        self._resumed_at = None
        self.coordinator.update("playing", False)

    def seek(self, position_ms: float) -> None:
        self.position_ms = max(0.0, min(position_ms, self.track_duration_ms))
        if self.playing:
            self._resumed_at = self._now()
        self.coordinator.update("position", self.position_ms)

    def set_volume(self, volume: int) -> None:
        self.volume = max(0, min(100, volume))
        self.coordinator.update("volume", self.volume)

    def select_track(self, track_name: str) -> None:
        """Switch to another playlist entry (position restarts)."""
        if track_name not in self.track_durations:
            raise ValueError(f"track {track_name!r} is not in the playlist")
        self.track_name = track_name
        self.track_duration_ms = self.track_durations[track_name]
        self.position_ms = 0.0
        if self.playing:
            self._resumed_at = self._now()
        self.coordinator.update("track", track_name)

    def next_track(self) -> None:
        """Advance through the playlist (wraps around)."""
        if not self.playlist:
            return
        index = self.playlist.index(self.track_name) \
            if self.track_name in self.playlist else -1
        self.select_track(self.playlist[(index + 1) % len(self.playlist)])

    @property
    def streaming_remotely(self) -> bool:
        """True when the track is bound to a remote URL (not carried)."""
        return any(d.is_remote for d in self.data_components)

    # -- lifecycle hooks ---------------------------------------------------------------

    def on_start(self) -> None:
        self.play()

    def on_suspend(self) -> None:
        # Freeze the playback position before the snapshot is captured.
        if self.playing:
            self.position_ms = self.current_position_ms()
            self.playing = False
            self._resumed_at = None

    def on_resume(self) -> None:
        self.play()

    # -- migratable state -----------------------------------------------------------------

    def get_app_state(self) -> Dict[str, Any]:
        return {
            "playing": self.playing,
            "position_ms": self.current_position_ms()
            if self.middleware is not None else self.position_ms,
            "track_name": self.track_name,
            "track_duration_ms": self.track_duration_ms,
            "volume": self.volume,
            "playlist": list(self.playlist),
            "track_durations": dict(self.track_durations),
        }

    def restore_app_state(self, state: Dict[str, Any]) -> None:
        self.position_ms = state["position_ms"]
        self.track_name = state["track_name"]
        self.track_duration_ms = state["track_duration_ms"]
        self.volume = state["volume"]
        self.playlist = list(state.get("playlist", ()))
        self.track_durations = dict(state.get("track_durations", {}))
        self.playing = False  # on_resume()/on_start() restarts playback
        self._resumed_at = None
