"""Handheld application variants (paper §5: "handheld editor, handheld
music player").

Handheld builds use smaller UI bundles and relaxed device requirements so
they run on PDA-class hosts (see
:func:`repro.core.profiles.handheld_profile`); the adaptor then compacts
toolbars and disables animations on arrival.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.editor import EditorApp
from repro.apps.music_player import MusicPlayerApp
from repro.core.profiles import UserProfile

HANDHELD_UI_BYTES = 80_000


def build_handheld_editor(name: str, owner: str, initial_text: str = "",
                          user_profile: Optional[UserProfile] = None
                          ) -> EditorApp:
    """An editor sized for PDA screens (touch input, small UI bundle)."""
    app = EditorApp.build(name, owner, initial_text,
                          user_profile=user_profile,
                          ui_bytes=HANDHELD_UI_BYTES)
    app.device_requirements = {"min_screen_width": 240}
    ui = app.component("editor-ui")
    ui.attributes.update(width=320, height=240)
    return app


def build_handheld_music_player(name: str, owner: str,
                                track_bytes: int = 3_000_000,
                                user_profile: Optional[UserProfile] = None
                                ) -> MusicPlayerApp:
    """A music player for handhelds; smaller UI, same codec + data model."""
    app = MusicPlayerApp.build(name, owner, track_bytes,
                               user_profile=user_profile)
    ui = app.component("player-ui")
    ui.size_bytes = HANDHELD_UI_BYTES
    ui.attributes.update(width=320, height=240)
    return app
