"""The follow-me instant messenger (paper §5 demo).

Conversation history migrates with the user.  Two messenger instances can
also be linked through the coordinator (like the slide show) so a
conversation stays live across a clone-dispatch to a second device.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.application import Application, register_application_type
from repro.core.components import DataComponent, LogicComponent, PresentationComponent
from repro.core.profiles import UserProfile

MESSENGER_LOGIC_BYTES = 160_000
MESSENGER_UI_BYTES = 200_000


@register_application_type
class MessengerApp(Application):
    """An instant messenger with migratable conversation state."""

    def __init__(self, name: str, owner: str, **kwargs):
        super().__init__(name, owner, **kwargs)
        self.conversation: List[Dict[str, Any]] = []
        self.contact = ""
        self.unread = 0

    @classmethod
    def build(cls, name: str, owner: str, contact: str = "",
              user_profile: Optional[UserProfile] = None) -> "MessengerApp":
        app = cls(name, owner, user_profile=user_profile)
        app.add_component(LogicComponent("im-logic", MESSENGER_LOGIC_BYTES))
        app.add_component(PresentationComponent(
            "im-ui", MESSENGER_UI_BYTES,
            attributes={"width": 480, "height": 640}))
        app.add_component(DataComponent("history", 1,
                                        content_tag=f"im:{name}"))
        app.contact = contact
        return app

    # -- messaging -----------------------------------------------------------

    def send_message(self, text: str) -> None:
        self._append({"from": self.owner, "text": text})
        self.coordinator.update("messages", len(self.conversation))

    def receive_message(self, sender: str, text: str) -> None:
        self._append({"from": sender, "text": text})
        self.unread += 1
        self.coordinator.update("messages", len(self.conversation))

    def mark_read(self) -> None:
        self.unread = 0

    def _append(self, message: Dict[str, Any]) -> None:
        self.conversation.append(message)
        if self.has_component("history"):
            history = self.component("history")
            history.size_bytes += len(message["text"].encode("utf-8")) + 32
            history.touch()

    @property
    def last_message(self) -> Optional[Dict[str, Any]]:
        return self.conversation[-1] if self.conversation else None

    # -- migratable state ----------------------------------------------------------

    def get_app_state(self) -> Dict[str, Any]:
        return {"conversation": [dict(m) for m in self.conversation],
                "contact": self.contact, "unread": self.unread}

    def restore_app_state(self, state: Dict[str, Any]) -> None:
        self.conversation = [dict(m) for m in state["conversation"]]
        self.contact = state["contact"]
        self.unread = state["unread"]
