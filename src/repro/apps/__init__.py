"""Demo applications built on the MDAgent public API (paper §5).

The paper built six demos: "smart media player, follow-me editor, ubiquitous
slide show, handheld editor, handheld music player, and follow-me instant
messenger".  All six are here:

- :class:`MusicPlayerApp` -- the follow-me music player whose migration cost
  the paper measures (Figs. 8-10).
- :class:`SlideShowApp` -- the clone-dispatch ubiquitous slide show with
  synchronized presentations across rooms.
- :class:`EditorApp` -- follow-me text editor.
- :class:`MessengerApp` -- follow-me instant messenger.
- :func:`build_handheld_editor` / :func:`build_handheld_music_player` --
  handheld variants exercising the adaptor's device customization.
"""

from repro.apps.editor import EditorApp
from repro.apps.handheld import build_handheld_editor, build_handheld_music_player
from repro.apps.media import make_document, make_slide_deck, make_track
from repro.apps.messenger import MessengerApp
from repro.apps.music_player import MusicPlayerApp
from repro.apps.slideshow import SlideShowApp

__all__ = [
    "EditorApp",
    "MessengerApp",
    "MusicPlayerApp",
    "SlideShowApp",
    "build_handheld_editor",
    "build_handheld_music_player",
    "make_document",
    "make_slide_deck",
    "make_track",
]
