"""Synthetic media fixtures: tracks, slide decks, documents.

The paper's experiments use MP3 files of 2.0-7.5 MB and OpenOffice Impress
slide decks; only byte size and an identity tag matter to the middleware,
so these factories produce :class:`~repro.core.components.DataComponent`
instances of the requested size.
"""

from __future__ import annotations

from repro.core.components import DataComponent

#: The paper's Fig. 8/9 sweep, in bytes.
PAPER_FILE_SIZES_MB = (2.0, 3.0, 4.3, 5.6, 6.5, 7.5)


def make_track(name: str, size_bytes: int,
               bitrate_kbps: int = 192) -> DataComponent:
    """A music file; duration derives from size and bitrate."""
    track = DataComponent(name, size_bytes, content_tag=f"audio:{name}")
    track.duration_ms = int(size_bytes * 8 / (bitrate_kbps * 1000) * 1000)
    return track


def make_slide_deck(name: str, slide_count: int,
                    per_slide_bytes: int = 120_000) -> DataComponent:
    """A slide deck sized by slide count."""
    if slide_count < 1:
        raise ValueError("slide deck needs at least one slide")
    deck = DataComponent(name, slide_count * per_slide_bytes,
                         content_tag=f"slides:{name}:{slide_count}")
    deck.slide_count = slide_count
    return deck


def make_document(name: str, text: str = "") -> DataComponent:
    """A text document; size tracks the text length."""
    doc = DataComponent(name, max(len(text.encode("utf-8")), 1),
                        content_tag=f"doc:{name}")
    doc.text = text
    return doc
