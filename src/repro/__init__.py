"""MDAgent: agent-based middleware for application mobility in pervasive
environments.

A from-scratch Python reproduction of Zhou et al., "A Middleware Support for
Agent-Based Application Mobility in Pervasive Environments" (ICDCS Workshops
2007), including every substrate the paper depends on: a discrete-event
network simulator, a JADE-style agent platform with mobile-agent migration,
a Cricket-style context/sensing pipeline, an OWL/Jena-style ontology and
rule engine, and a jUDDI-style registry center.

Quick start::

    from repro import Deployment, MigrationKind, BindingPolicy
    from repro.apps import MusicPlayerApp

    d = Deployment(seed=1)
    d.add_space("room821")
    src = d.add_host("desk-pc", "room821")
    dst = d.add_host("wall-pc", "room821")
    app = MusicPlayerApp.build("player", "alice", track_bytes=5_000_000)
    src.launch_application(app)
    d.run_all()
    outcome = src.migrate("player", "wall-pc")
    d.run_all()
    print(outcome.phases())
"""

from repro.core import (
    Application,
    AppStatus,
    BindingPolicy,
    DataComponent,
    DecisionEngine,
    Deployment,
    DeviceProfile,
    LogicComponent,
    MDAgentMiddleware,
    MiddlewareConfig,
    MigrationKind,
    MigrationOutcome,
    MigrationPlan,
    PresentationComponent,
    ResourceBinding,
    UserProfile,
    register_application_type,
    summarize,
)
from repro.faults import ChaosEngine, FaultConfig, FaultPlan, FaultSpec

__version__ = "1.1.0"

__all__ = [
    "AppStatus",
    "Application",
    "BindingPolicy",
    "ChaosEngine",
    "DataComponent",
    "DecisionEngine",
    "Deployment",
    "DeviceProfile",
    "FaultConfig",
    "FaultPlan",
    "FaultSpec",
    "LogicComponent",
    "MDAgentMiddleware",
    "MiddlewareConfig",
    "MigrationKind",
    "MigrationOutcome",
    "MigrationPlan",
    "PresentationComponent",
    "ResourceBinding",
    "UserProfile",
    "__version__",
    "register_application_type",
    "summarize",
]
