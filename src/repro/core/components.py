"""Application component model.

"An executing application generally consists of user interfaces, logic,
computation states, and resource bindings" (paper §1); the application
model "should be decomposed into separate parts, such as logics,
presentations, resources, data" (§3.1).  Each part is a
:class:`Component` with an explicit serialized size -- the quantity that
drives migration cost -- and flags describing whether it can move.

Components serialize to plain dicts (``to_dict`` / ``from_dict`` with a type
registry) so a mobile agent can wrap any subset and re-materialize it at the
destination.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Type

from repro.core.errors import ApplicationError


class ComponentKind(enum.Enum):
    LOGIC = "logic"
    PRESENTATION = "presentation"
    DATA = "data"
    RESOURCE = "resource"


class Component:
    """Base application component.

    Subclasses must keep all mutable state in plain-data attributes listed
    by :meth:`to_dict`; that is the migration contract.
    """

    kind: ComponentKind

    def __init__(self, name: str, size_bytes: int, transferable: bool = True):
        if not name:
            raise ApplicationError("component name must be non-empty")
        if size_bytes < 0:
            raise ApplicationError(f"negative component size: {size_bytes}")
        self.name = name
        self.size_bytes = int(size_bytes)
        self.transferable = transferable
        self.version = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": type(self).__name__,
            "name": self.name,
            "size_bytes": self.size_bytes,
            "transferable": self.transferable,
            "version": self.version,
            # The serializer charges this as real payload bytes, so a
            # wrapped component costs its full content size on the wire.
            "__virtual_bytes__": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Component":
        component_cls = _COMPONENT_TYPES.get(data["type"])
        if component_cls is None:
            raise ApplicationError(f"unknown component type {data['type']!r}")
        return component_cls._build(data)

    @classmethod
    def _build(cls, data: Dict[str, Any]) -> "Component":
        component = cls(data["name"], data["size_bytes"],
                        data.get("transferable", True))
        component.version = data.get("version", 1)
        return component

    def touch(self) -> None:
        """Bump the version (content changed)."""
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"{self.size_bytes}B v{self.version}>")


_COMPONENT_TYPES: Dict[str, Type[Component]] = {}


def register_component_type(cls: Type[Component]) -> Type[Component]:
    """Class decorator: allow this component type to be re-materialized."""
    _COMPONENT_TYPES[cls.__name__] = cls
    return cls


@register_component_type
class LogicComponent(Component):
    """Application logic (the "codec logic" of the music player demo).

    In the weak-mobility model the logic component stands for the code
    bundle; shipping it costs its size, and having it present at the
    destination means the app can run there without carrying it.
    """

    kind = ComponentKind.LOGIC

    def __init__(self, name: str, size_bytes: int = 150_000,
                 entry_point: str = ""):
        super().__init__(name, size_bytes, transferable=True)
        self.entry_point = entry_point

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["entry_point"] = self.entry_point
        return data

    @classmethod
    def _build(cls, data: Dict[str, Any]) -> "LogicComponent":
        component = cls(data["name"], data["size_bytes"],
                        data.get("entry_point", ""))
        component.version = data.get("version", 1)
        return component


@register_component_type
class PresentationComponent(Component):
    """A user interface surface; observes application state changes.

    ``attributes`` hold adaptable display properties (width, height,
    resolution...) that the Adaptor rewrites for the destination device.
    ``updates`` logs (key, value) notifications received through the
    coordinator -- the observable behaviour tests and demos assert on.
    """

    kind = ComponentKind.PRESENTATION

    def __init__(self, name: str, size_bytes: int = 250_000,
                 attributes: Optional[Dict[str, Any]] = None):
        super().__init__(name, size_bytes, transferable=True)
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.updates: List[tuple] = []

    def notify(self, key: str, value: Any) -> None:
        """Observer callback: the coordinator pushes state changes here."""
        self.updates.append((key, value))

    @property
    def last_update(self) -> Optional[tuple]:
        return self.updates[-1] if self.updates else None

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["attributes"] = dict(self.attributes)
        return data

    @classmethod
    def _build(cls, data: Dict[str, Any]) -> "PresentationComponent":
        component = cls(data["name"], data["size_bytes"],
                        data.get("attributes"))
        component.version = data.get("version", 1)
        return component


@register_component_type
class DataComponent(Component):
    """Bulk application data (music files, slide decks, documents).

    The content itself is virtual -- only ``size_bytes`` matters to the
    simulation -- but a content digest tag keeps copies distinguishable.
    ``remote_url`` is set when the data stays behind and is streamed from
    the source host ("they will be played remotely through URL in the
    original host").
    """

    kind = ComponentKind.DATA

    def __init__(self, name: str, size_bytes: int, content_tag: str = "",
                 transferable: bool = True):
        super().__init__(name, size_bytes, transferable=transferable)
        self.content_tag = content_tag or name
        self.remote_url: str = ""

    @property
    def is_remote(self) -> bool:
        return bool(self.remote_url)

    def bind_remote(self, url: str) -> None:
        self.remote_url = url

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["content_tag"] = self.content_tag
        data["remote_url"] = self.remote_url
        return data

    @classmethod
    def _build(cls, data: Dict[str, Any]) -> "DataComponent":
        component = cls(data["name"], data["size_bytes"],
                        data.get("content_tag", ""),
                        data.get("transferable", True))
        component.remote_url = data.get("remote_url", "")
        component.version = data.get("version", 1)
        return component


@register_component_type
class ResourceBinding(Component):
    """A binding to an environmental resource (printer, display, speaker).

    Never transferable itself -- the *binding* is re-established at the
    destination, either to a semantically compatible local resource or back
    to the original over the network (remote binding).
    """

    kind = ComponentKind.RESOURCE

    def __init__(self, name: str, resource_id: str, resource_class: str,
                 size_bytes: int = 256):
        super().__init__(name, size_bytes, transferable=False)
        if not resource_id or not resource_class:
            raise ApplicationError(
                "resource binding needs resource_id and resource_class")
        self.resource_id = resource_id
        self.resource_class = resource_class
        #: "local" | "remote" | "unbound"
        self.mode = "local"

    def rebind(self, resource_id: str, mode: str = "local") -> None:
        if mode not in ("local", "remote", "unbound"):
            raise ApplicationError(f"invalid binding mode {mode!r}")
        self.resource_id = resource_id
        self.mode = mode
        self.touch()

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(resource_id=self.resource_id,
                    resource_class=self.resource_class, mode=self.mode)
        return data

    @classmethod
    def _build(cls, data: Dict[str, Any]) -> "ResourceBinding":
        component = cls(data["name"], data["resource_id"],
                        data["resource_class"], data["size_bytes"])
        component.mode = data.get("mode", "local")
        component.version = data.get("version", 1)
        return component
