"""Deployment event tracing: a queryable, printable timeline.

Attaches to a deployment's context bus and migration outcomes and records
everything of interest -- location fixes, app lifecycle events, migration
phase boundaries -- as timestamped entries.  Useful for debugging scenarios
and for the narrated examples.

Since the ``repro.obs`` subsystem landed, :class:`DeploymentTracer` is a
thin facade over :class:`repro.obs.Tracer`: every entry is mirrored as a
structured :class:`~repro.obs.EventRecord` (category ``deployment``), so a
deployment trace shows up in the JSONL / Chrome exports alongside kernel,
network and agent spans.  If the deployment was built with an
:class:`~repro.obs.Observability` hub, its tracer is reused; otherwise a
private one is created, clocked off the deployment's loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.context.model import ContextEvent
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import Deployment


@dataclass
class TraceEntry:
    """One recorded event."""

    timestamp: float
    category: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return (f"[{self.timestamp:10.1f} ms] {self.category:<10} "
                f"{self.subject:<16} {self.detail}")


class DeploymentTracer:
    """Records a deployment's observable events in order.

    ``entries`` preserves insertion order (the order callbacks fired);
    the query helpers (:meth:`by_category`, :meth:`by_subject`,
    :meth:`between`) and :meth:`timeline` return time-sorted views.
    """

    def __init__(self, deployment: "Deployment",
                 topics: Optional[List[str]] = None):
        self.deployment = deployment
        self.entries: List[TraceEntry] = []
        obs = getattr(deployment, "observability", None)
        if obs is not None and obs.enabled:
            self.tracer = obs.tracer
        else:
            self.tracer = Tracer(clock=lambda: deployment.loop.now)
        for topic in topics if topics is not None else ["context.*"]:
            deployment.bus.subscribe(topic, self._on_event)

    def _on_event(self, event: ContextEvent) -> None:
        if event.topic == "context.location":
            detail = (f"-> {event.get('location')} "
                      f"(from {event.get('previous')}, "
                      f"confidence {event.confidence:.2f})")
            category = "location"
        elif event.topic == "context.app":
            detail = f"{event.get('event')} on {event.get('host')}"
            category = "app"
        elif event.topic == "context.network":
            detail = f"rtt {event.get('response_time_ms'):.1f} ms"
            category = "network"
        else:
            detail = str(event.attributes)
            category = event.topic.split(".", 1)[-1]
        self.record(category, event.subject, detail,
                    timestamp=event.timestamp)

    def record(self, category: str, subject: str, detail: str,
               timestamp: Optional[float] = None) -> TraceEntry:
        """Append a custom entry (also used by outcome watching)."""
        entry = TraceEntry(
            timestamp if timestamp is not None else self.deployment.loop.now,
            category, subject, detail)
        self.entries.append(entry)
        self.tracer.event(category, category="deployment",
                          at=entry.timestamp, subject=subject, detail=detail)
        return entry

    def watch_outcome(self, outcome) -> None:
        """Record a migration outcome's phase boundaries on completion."""

        def on_done(o):
            subject = o.plan.app_name
            if o.failed:
                self.record("migration", subject,
                            f"FAILED: {o.failure_reason}")
                return
            self.record("migration", subject,
                        f"{o.plan.source} -> {o.plan.destination} "
                        f"suspend={o.suspend_ms:.0f}ms "
                        f"migrate={o.migrate_ms:.0f}ms "
                        f"resume={o.resume_ms:.0f}ms "
                        f"({o.bytes_transferred:,} B)",
                        timestamp=o.resume_done_at)

        outcome.on_complete(on_done)

    # -- queries ------------------------------------------------------------

    @staticmethod
    def _chronological(entries: List[TraceEntry]) -> List[TraceEntry]:
        return sorted(entries, key=lambda e: e.timestamp)

    def by_category(self, category: str) -> List[TraceEntry]:
        return self._chronological(
            [e for e in self.entries if e.category == category])

    def by_subject(self, subject: str) -> List[TraceEntry]:
        return self._chronological(
            [e for e in self.entries if e.subject == subject])

    def between(self, start_ms: float, end_ms: float) -> List[TraceEntry]:
        return self._chronological(
            [e for e in self.entries if start_ms <= e.timestamp <= end_ms])

    def timeline(self) -> str:
        """The whole trace, chronologically, one line per entry."""
        return "\n".join(str(e) for e in self._chronological(self.entries))

    def __len__(self) -> int:
        return len(self.entries)
