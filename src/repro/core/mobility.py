"""The mobility manager: executes migration plans end-to-end.

Implements the Fig. 4 interaction: suspend (coordinator + snapshot manager),
wrap (mobile agent), migrate (agent platform check-out / transfer /
check-in), unwrap + rebind + adapt + resume at the destination, and --
for clone-dispatch -- establish the synchronization link back to the master.

Phase timing matches the paper's three measured segments: *suspension*
(suspend + snapshot), *migration* (the mobile agent's journey), and
*resumption* (restore + rebind + adapt + remote-data open).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.application import AppStatus, Application
from repro.core.binding import (
    BindingPolicy,
    MigrationKind,
    MigrationPlan,
    ResourceRebind,
)
from repro.core.errors import MigrationError
from repro.core.metrics import MigrationOutcome
from repro.core.mobile_agent import MDMobileAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import MDAgentMiddleware


@dataclass
class MobilityConfig:
    """Cost knobs for the application-level migration phases.

    Calibrated so the paper's testbed regime (10 Mbps link, single-PC-class
    hosts) lands near its reported phase magnitudes; all CPU-bound terms
    scale with the host's ``cpu_factor``.
    """

    #: Suspension: stop the app + capture the snapshot.
    suspend_base_ms: float = 90.0
    snapshot_ms_per_mb: float = 25.0
    #: Clone-dispatch does not stop the source app; it only snapshots.
    clone_snapshot_base_ms: float = 25.0
    #: Resumption: restore state, rebind resources, adapt, restart.
    resume_base_ms: float = 180.0
    restore_ms_per_mb: float = 40.0
    rebind_ms_per_resource: float = 8.0
    adapt_ms: float = 12.0
    #: Remote data open ("played remotely through URL"): a fixed handshake
    #: plus fetching this fraction of the file (seek tables / first buffer).
    remote_open_base_ms: float = 100.0
    remote_open_fraction: float = 0.04


def plan_to_dict(plan: MigrationPlan) -> Dict[str, Any]:
    """Plain-data wire form of a plan (rides inside the mobile agent)."""
    return {
        "app_name": plan.app_name,
        "source": plan.source,
        "destination": plan.destination,
        "kind": plan.kind.value,
        "policy": plan.policy.value,
        "carry_components": list(plan.carry_components),
        "reuse_components": list(plan.reuse_components),
        "remote_data": list(plan.remote_data),
        "remote_data_bytes": dict(plan.remote_data_bytes),
        "resource_rebinds": [
            {"binding_name": r.binding_name,
             "original_resource": r.original_resource,
             "target_resource": r.target_resource,
             "mode": r.mode}
            for r in plan.resource_rebinds],
        "estimated_bytes": plan.estimated_bytes,
        "token": plan.token,
        "prestage": plan.prestage,
    }


def plan_from_dict(data: Dict[str, Any]) -> MigrationPlan:
    return MigrationPlan(
        app_name=data["app_name"],
        source=data["source"],
        destination=data["destination"],
        kind=MigrationKind(data["kind"]),
        policy=BindingPolicy(data["policy"]),
        carry_components=list(data["carry_components"]),
        reuse_components=list(data["reuse_components"]),
        remote_data=list(data["remote_data"]),
        remote_data_bytes=dict(data.get("remote_data_bytes", {})),
        resource_rebinds=[
            ResourceRebind(r["binding_name"], r["original_resource"],
                           r["target_resource"], r["mode"])
            for r in data["resource_rebinds"]],
        estimated_bytes=data["estimated_bytes"],
        token=data.get("token", ""),
        prestage=data.get("prestage", False),
    )


def end_outcome_spans(outcome: MigrationOutcome, **attributes) -> None:
    """Seal any observability spans still open on ``outcome``.

    The phase spans (suspend/migrate/resume) and their ``app.migration``
    root ride the outcome object across hosts; every failure path funnels
    through :meth:`MigrationOutcome._finish`, so the mobility manager
    registers this as an ``on_complete`` callback to guarantee no span is
    left dangling.
    """
    for attr in ("_obs_phase", "_obs_root"):
        span = getattr(outcome, attr, None)
        if span is not None and not span.finished:
            span.end(**attributes)


class MobilityManager:
    """Source-side executor of migration plans (one per middleware)."""

    def __init__(self, middleware: "MDAgentMiddleware",
                 config: Optional[MobilityConfig] = None):
        self.middleware = middleware
        self.config = config if config is not None else MobilityConfig()
        # Per-instance so identical deployments produce identical agent
        # names (and therefore bit-identical wire sizes).
        self._ma_seq = itertools.count(1)
        self.migrations_started = 0

    @property
    def loop(self):
        return self.middleware.loop

    def execute(self, app: Application, plan: MigrationPlan,
                outcome: MigrationOutcome) -> MigrationOutcome:
        """Run a plan: suspend -> wrap -> migrate (dest side continues)."""
        middleware = self.middleware
        if app.status is not AppStatus.RUNNING:
            raise MigrationError(
                f"cannot migrate {app.name!r}: status is {app.status}")
        if plan.source != middleware.host_name:
            raise MigrationError(
                f"plan source {plan.source!r} is not this host "
                f"{middleware.host_name!r}")
        self.migrations_started += 1
        outcome.started_at = self.loop.now
        obs = self.loop.observability
        if obs is not None:
            # The phase spans carry exactly the timestamps that feed the
            # outcome's suspend/migrate/resume figures (Fig. 8/9 series):
            # both are written from the same loop.now at the same call
            # sites, so trace and tables agree to the float bit.
            root = obs.tracer.begin_span(
                "app.migration", category="migration", host=middleware.host,
                app=plan.app_name, source=plan.source,
                destination=plan.destination, kind=plan.kind.value,
                policy=plan.policy.value)
            outcome._obs_root = root
            outcome._obs_phase = root.child("suspend", host=middleware.host,
                                            app=plan.app_name)
            outcome.on_complete(
                lambda o: end_outcome_spans(o, failed=o.failed))
        cpu = middleware.host.cpu_factor
        config = self.config
        if plan.kind is MigrationKind.FOLLOW_ME:
            app.suspend()
            outcome.log(f"suspended {app.name} at {self.loop.now:.1f}")
        snapshot = middleware.snapshot_manager.capture(app, now=self.loop.now)
        size_mb = snapshot.size_bytes / 1e6
        if plan.kind is MigrationKind.FOLLOW_ME:
            suspend_cost = (config.suspend_base_ms
                            + config.snapshot_ms_per_mb * size_mb) * cpu
        else:
            suspend_cost = (config.clone_snapshot_base_ms
                            + config.snapshot_ms_per_mb * size_mb) * cpu
        self.loop.call_later(suspend_cost, self._wrap_and_send, app, plan,
                             outcome, snapshot)
        return outcome

    def _wrap_and_send(self, app: Application, plan: MigrationPlan,
                       outcome: MigrationOutcome, snapshot) -> None:
        middleware = self.middleware
        outcome.suspend_done_at = self.loop.now
        root = getattr(outcome, "_obs_root", None)
        if root is not None:
            outcome._obs_phase.end(host=middleware.host)
            outcome._obs_phase = root.child("migrate", host=middleware.host,
                                            app=plan.app_name)
        manifest = app.to_manifest(plan.carry_components)
        # A migrating sync master hands its replica set over: the manifest
        # carries the list so the new host can re-point every replica.
        coordinator = app.coordinator
        if (plan.kind is MigrationKind.FOLLOW_ME
                and coordinator.sync_role.value == "master"
                and coordinator.replica_hosts):
            manifest["sync_master"] = {
                "replicas": list(coordinator.replica_hosts)}
        # Remote-bound data components still appear in the manifest as
        # lightweight stubs (size 0 on the wire) so the destination knows
        # the URL to stream from.
        for name in plan.remote_data:
            if app.has_component(name):
                component = app.component(name)
                stub = component.to_dict()
                stub["size_bytes"] = 0
                stub["__virtual_bytes__"] = 0
                stub["remote_url"] = f"md://{plan.source}/{app.name}/{name}"
                manifest["components"].append(stub)
        # Resource bindings are tiny metadata: they always travel so the
        # destination can re-establish them (to a local match or remotely).
        carried_names = {c["name"] for c in manifest["components"]}
        for rebind in plan.resource_rebinds:
            if rebind.binding_name in carried_names:
                continue
            if app.has_component(rebind.binding_name):
                manifest["components"].append(
                    app.component(rebind.binding_name).to_dict())
        ma_name = f"ma-{plan.app_name}-{next(self._ma_seq)}"
        ma = middleware.container.create_agent(MDMobileAgent, ma_name)
        ma.load_cargo(manifest, snapshot.to_dict(), plan_to_dict(plan))
        result = ma.do_move(plan.destination)
        outcome.bytes_transferred = result.size_bytes
        outcome.depart_local = 0.0  # filled when checkout completes

        def on_moved(r):
            outcome.depart_local = r.depart_local
            outcome.arrive_local = r.arrive_local
            outcome.agent_departed_at = r.checked_out_at
            outcome.agent_arrived_at = r.arrived_at
            outcome.transfer_retries = r.transfer_retries
            outcome.transfer_resumed = r.transfer_resumed
            outcome.dedup_hits = r.dedup_hits
            for entry in r.recovery_log:
                outcome.log(f"transfer recovery: {entry}")
            if r.failed:
                outcome.failed = True
                outcome.failure_reason = r.failure_reason
                if plan.kind is MigrationKind.FOLLOW_ME:
                    self._rollback(app, snapshot, outcome)
                self._count_failure(plan)
                outcome._finish()

        result.on_complete(on_moved)
        if plan.kind is MigrationKind.FOLLOW_ME:
            # Cut-paste: the source copy stops (data files stay on disk for
            # remote streaming, but the user-facing instance is gone).
            app.stop()
            outcome.log(f"source instance of {app.name} stopped")

    def _count_failure(self, plan: MigrationPlan) -> None:
        """Counterpart of the ``migration.completed`` counter: without it
        a scheduler-driven fleet cannot tell a quiet deployment from one
        whose migrations all die in transit."""
        obs = self.loop.observability
        if obs is not None:
            obs.metrics.counter("migration.failed",
                                kind=plan.kind.value).inc()

    def _rollback(self, app: Application, snapshot,
                  outcome: MigrationOutcome) -> None:
        """Fault tolerance: the agent was lost in transit -- restore the
        stopped source instance from its own snapshot and resume it, so the
        user keeps a working application ("stronger resilience capability",
        paper §1)."""
        middleware = self.middleware
        if app.status is not AppStatus.INSTALLED:
            return  # nothing to roll back (clone, or already restarted)
        middleware.snapshot_manager.restore(app, snapshot)
        app.start(middleware)
        middleware.publish_app_event(app, "rolled-back")
        outcome.log(f"rolled back {app.name} at source "
                    f"{middleware.host_name} after transfer failure")

    # -- pre-staging (predictor-driven warm-up) -----------------------------

    def prestage_execute(self, app: Application, plan: MigrationPlan,
                         outcome: MigrationOutcome) -> MigrationOutcome:
        """Push the plan's components to the destination without moving
        execution; the app keeps running at the source untouched."""
        plan.prestage = True
        outcome.started_at = self.loop.now
        obs = self.loop.observability
        if obs is not None:
            outcome._obs_root = obs.tracer.begin_span(
                "app.prestage", category="migration",
                host=self.middleware.host, app=plan.app_name,
                source=plan.source, destination=plan.destination)
            outcome.on_complete(
                lambda o: end_outcome_spans(o, failed=o.failed))
        pack_cost = (self.config.clone_snapshot_base_ms
                     * self.middleware.host.cpu_factor)
        self.loop.call_later(pack_cost, self._send_prestage, app, plan,
                             outcome)
        return outcome

    def _send_prestage(self, app: Application, plan: MigrationPlan,
                       outcome: MigrationOutcome) -> None:
        outcome.suspend_done_at = self.loop.now
        manifest = app.to_manifest(plan.carry_components)
        empty_snapshot = {
            "app_name": app.name, "snapshot_id": 0,
            "taken_at": self.loop.now, "coordinator_state": {},
            "app_state": {}, "component_versions": {}, "size_bytes": 64,
        }
        ma_name = f"pre-{plan.app_name}-{next(self._ma_seq)}"
        ma = self.middleware.container.create_agent(MDMobileAgent, ma_name)
        ma.load_cargo(manifest, empty_snapshot, plan_to_dict(plan))
        result = ma.do_move(plan.destination)
        outcome.bytes_transferred = result.size_bytes

        def on_moved(r):
            if r.failed:
                outcome.failed = True
                outcome.failure_reason = r.failure_reason
                self._count_failure(plan)
                outcome._finish()

        result.on_complete(on_moved)

    def _finish_prestage(self, app: Application, plan: MigrationPlan,
                         outcome: Optional[MigrationOutcome],
                         ma: MDMobileAgent) -> None:
        middleware = self.middleware
        middleware.registry_client.call(
            "register_application",
            {"record": middleware._application_record(app).to_dict()},
            lambda result, error: None)
        if outcome is not None:
            outcome.resume_done_at = self.loop.now
            outcome.completed = True
            outcome.log(f"prestaged {plan.carry_components} on "
                        f"{middleware.host_name}")
            outcome._finish()
        ma.do_delete()

    # -- destination side (invoked by the middleware on MA arrival) --------

    def receive(self, ma: MDMobileAgent, outcome: Optional[MigrationOutcome]
                ) -> None:
        """Unwrap cargo at the destination and resume the application."""
        middleware = self.middleware
        plan = plan_from_dict(ma.plan)
        manifest = ma.manifest
        snapshot_data = ma.snapshot
        now = self.loop.now
        if outcome is not None:
            outcome.migrate_done_at = now
            outcome.log(f"mobile agent {ma.local_name} checked in at "
                        f"{now:.1f}")
            phase = getattr(outcome, "_obs_phase", None)
            if phase is not None and not phase.finished:
                # The migrate phase ends here, on the destination's clock.
                phase.end(host=middleware.host)
                outcome._obs_phase = outcome._obs_root.child(
                    "resume", host=middleware.host, app=plan.app_name)
        app = middleware.applications.get(plan.app_name)
        if app is None:
            app = Application.from_manifest(manifest)
            middleware.install_application(app, register=True)
        else:
            merged = app.merge_components(manifest)
            if outcome is not None and merged:
                outcome.log(f"merged carried components: {merged}")
        if plan.prestage:
            # Components are installed; execution stays at the source.
            install_cost = (self.config.clone_snapshot_base_ms
                            * middleware.host.cpu_factor)
            self.loop.call_later(install_cost, self._finish_prestage, app,
                                 plan, outcome, ma)
            return
        config = self.config
        cpu = middleware.host.cpu_factor
        size_mb = snapshot_data.get("size_bytes", 0) / 1e6
        resume_cost = (config.resume_base_ms
                       + config.restore_ms_per_mb * size_mb
                       + config.rebind_ms_per_resource
                       * len(plan.resource_rebinds)
                       + config.adapt_ms) * cpu
        self.loop.call_later(resume_cost, self._rebind_and_open, app, plan,
                             snapshot_data, outcome, ma)

    def _rebind_and_open(self, app: Application, plan: MigrationPlan,
                         snapshot_data: Dict[str, Any],
                         outcome: Optional[MigrationOutcome],
                         ma: MDMobileAgent) -> None:
        middleware = self.middleware
        # Re-establish resource bindings per the plan.
        for rebind in plan.resource_rebinds:
            if app.has_component(rebind.binding_name):
                binding = app.component(rebind.binding_name)
                binding.rebind(rebind.target_resource or
                               rebind.original_resource, rebind.mode)
                if outcome is not None:
                    outcome.log(f"rebound {rebind.binding_name} -> "
                                f"{rebind.target_resource} ({rebind.mode})")
        remote_total = sum(plan.remote_data_bytes.values())
        if remote_total > 0:
            # "They will be played remotely through URL in the original
            # host": open the stream by fetching the initial fraction.
            fetch_bytes = int(remote_total * self.config.remote_open_fraction)
            self.loop.call_later(
                self.config.remote_open_base_ms,
                middleware.fetch_remote_data, plan.source, plan.app_name,
                fetch_bytes,
                lambda: self._finish_resume(app, plan, snapshot_data,
                                            outcome, ma))
            if outcome is not None:
                outcome.log(f"opening remote data: fetching {fetch_bytes} B "
                            f"from {plan.source}")
        else:
            self._finish_resume(app, plan, snapshot_data, outcome, ma)

    def _finish_resume(self, app: Application, plan: MigrationPlan,
                       snapshot_data: Dict[str, Any],
                       outcome: Optional[MigrationOutcome],
                       ma: MDMobileAgent) -> None:
        middleware = self.middleware
        from repro.core.snapshot import Snapshot
        snapshot = Snapshot.from_dict(snapshot_data)
        if app.status is AppStatus.RUNNING:
            # Already running here (e.g. a sync replica); just refresh state.
            middleware.snapshot_manager.restore(app, snapshot)
        else:
            middleware.snapshot_manager.restore(app, snapshot)
            app.start(middleware)
        # Adapt to the destination device and the owner's preferences.
        report = middleware.adaptor.adapt(app, middleware.device_profile,
                                          app.user_profile)
        if outcome is not None and report.changes:
            outcome.log(f"adapted: {len(report.changes)} attribute changes")
        if plan.kind is MigrationKind.CLONE_DISPATCH:
            middleware.establish_sync_replica(app, plan.source)
            if outcome is not None:
                outcome.log(f"sync link established to master {plan.source}")
        sync_master = getattr(ma, "manifest", {}).get("sync_master")
        if sync_master is not None:
            # Master handoff: reclaim the replica set and re-point every
            # replica at this host.
            middleware.assume_sync_master(app, sync_master["replicas"])
            if outcome is not None:
                outcome.log(f"sync master moved; re-pointed replicas "
                            f"{sync_master['replicas']}")
        middleware.registry_client.call(
            "register_application",
            {"record": middleware._application_record(app).to_dict()},
            lambda result, error: None)
        middleware.publish_app_event(app, "resumed")
        if outcome is not None:
            outcome.resume_done_at = self.loop.now
            outcome.completed = True
            obs = self.loop.observability
            if obs is not None:
                end_outcome_spans(outcome, host=middleware.host,
                                  bytes=outcome.bytes_transferred)
                metrics = obs.metrics
                metrics.counter("migration.completed",
                                kind=plan.kind.value).inc()
                for phase_name, value in outcome.phases().items():
                    metrics.histogram("migration.phase_ms", phase=phase_name,
                                      app=plan.app_name).observe(value)
            outcome._finish()
        ma.do_delete()
