"""The mobility manager: executes migration plans end-to-end.

Implements the Fig. 4 interaction: suspend (coordinator + snapshot manager),
wrap (mobile agent), migrate (agent platform check-out / transfer /
check-in), unwrap + rebind + adapt + resume at the destination, and --
for clone-dispatch -- establish the synchronization link back to the master.

Phase timing matches the paper's three measured segments: *suspension*
(suspend + snapshot), *migration* (the mobile agent's journey), and
*resumption* (restore + rebind + adapt + remote-data open).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.application import AppStatus, Application
from repro.core.binding import (
    BindingPolicy,
    MigrationKind,
    MigrationPlan,
    ResourceRebind,
)
from repro.core.metrics import MigrationOutcome
from repro.core.mobile_agent import MDMobileAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import MDAgentMiddleware


@dataclass
class MobilityConfig:
    """Cost knobs for the application-level migration phases.

    Calibrated so the paper's testbed regime (10 Mbps link, single-PC-class
    hosts) lands near its reported phase magnitudes; all CPU-bound terms
    scale with the host's ``cpu_factor``.
    """

    #: Suspension: stop the app + capture the snapshot.
    suspend_base_ms: float = 90.0
    snapshot_ms_per_mb: float = 25.0
    #: Clone-dispatch does not stop the source app; it only snapshots.
    clone_snapshot_base_ms: float = 25.0
    #: Resumption: restore state, rebind resources, adapt, restart.
    resume_base_ms: float = 180.0
    restore_ms_per_mb: float = 40.0
    rebind_ms_per_resource: float = 8.0
    adapt_ms: float = 12.0
    #: Remote data open ("played remotely through URL"): a fixed handshake
    #: plus fetching this fraction of the file (seek tables / first buffer).
    remote_open_base_ms: float = 100.0
    remote_open_fraction: float = 0.04


def plan_to_dict(plan: MigrationPlan) -> Dict[str, Any]:
    """Plain-data wire form of a plan (rides inside the mobile agent)."""
    return {
        "app_name": plan.app_name,
        "source": plan.source,
        "destination": plan.destination,
        "kind": plan.kind.value,
        "policy": plan.policy.value,
        "carry_components": list(plan.carry_components),
        "reuse_components": list(plan.reuse_components),
        "remote_data": list(plan.remote_data),
        "remote_data_bytes": dict(plan.remote_data_bytes),
        "resource_rebinds": [
            {"binding_name": r.binding_name,
             "original_resource": r.original_resource,
             "target_resource": r.target_resource,
             "mode": r.mode}
            for r in plan.resource_rebinds],
        "estimated_bytes": plan.estimated_bytes,
        "token": plan.token,
        "prestage": plan.prestage,
    }


def plan_from_dict(data: Dict[str, Any]) -> MigrationPlan:
    return MigrationPlan(
        app_name=data["app_name"],
        source=data["source"],
        destination=data["destination"],
        kind=MigrationKind(data["kind"]),
        policy=BindingPolicy(data["policy"]),
        carry_components=list(data["carry_components"]),
        reuse_components=list(data["reuse_components"]),
        remote_data=list(data["remote_data"]),
        remote_data_bytes=dict(data.get("remote_data_bytes", {})),
        resource_rebinds=[
            ResourceRebind(r["binding_name"], r["original_resource"],
                           r["target_resource"], r["mode"])
            for r in data["resource_rebinds"]],
        estimated_bytes=data["estimated_bytes"],
        token=data.get("token", ""),
        prestage=data.get("prestage", False),
    )


def end_outcome_spans(outcome: MigrationOutcome, **attributes) -> None:
    """Seal any observability spans still open on ``outcome``.

    The phase spans (suspend/migrate/resume) and their ``app.migration``
    root ride the outcome object across hosts; every failure path funnels
    through :meth:`MigrationOutcome._finish`, so the mobility manager
    registers this as an ``on_complete`` callback to guarantee no span is
    left dangling.
    """
    for attr in ("_obs_phase", "_obs_root"):
        span = getattr(outcome, attr, None)
        if span is not None and not span.finished:
            span.end(**attributes)


class MobilityManager:
    """Source-side executor of migration plans (one per middleware).

    Since the pipeline refactor the phase *logic* lives in
    :mod:`repro.core.pipeline`; this class keeps the cost knobs, the
    mobile-agent name sequence, the rollback/failure-accounting helpers,
    and the timer continuation methods (``_wrap_and_send`` and friends).
    Those methods are the monolith's historical timer targets: the kernel
    records every dispatched callback's qualified name in the trace, so
    keeping the names -- as one-line continuations into the pipeline --
    keeps the pinned bench/golden digests byte-identical.
    """

    def __init__(self, middleware: "MDAgentMiddleware",
                 config: Optional[MobilityConfig] = None):
        self.middleware = middleware
        self.config = config if config is not None else MobilityConfig()
        # Per-instance so identical deployments produce identical agent
        # names (and therefore bit-identical wire sizes).
        self._ma_seq = itertools.count(1)
        self.migrations_started = 0

    @property
    def loop(self):
        return self.middleware.loop

    # -- pipeline timer continuations ---------------------------------------
    # Scheduled via loop.call_later by the pipeline phases; each marks the
    # paid cost window done and hands control back to the stack.

    def _wrap_and_send(self, ctx) -> None:
        """State capture cost paid: continue with the transfer phase."""
        ctx.complete_phase()

    def _rebind_and_open(self, ctx) -> None:
        """Restore cost paid at the destination: continue with rebind."""
        ctx.complete_phase()

    def _send_prestage(self, ctx) -> None:
        """Packing cost paid: continue with the prestage transfer."""
        ctx.complete_phase()

    def _finish_prestage(self, ctx) -> None:
        """Install cost paid at the destination: finish the prestage."""
        ctx.complete_phase()

    def _count_failure(self, plan: MigrationPlan) -> None:
        """Counterpart of the ``migration.completed`` counter: without it
        a scheduler-driven fleet cannot tell a quiet deployment from one
        whose migrations all die in transit."""
        obs = self.loop.observability
        if obs is not None:
            obs.metrics.counter("migration.failed",
                                kind=plan.kind.value).inc()

    def _rollback(self, app: Application, snapshot,
                  outcome: MigrationOutcome) -> None:
        """Fault tolerance: the agent was lost in transit -- restore the
        stopped source instance from its own snapshot and resume it, so the
        user keeps a working application ("stronger resilience capability",
        paper §1)."""
        middleware = self.middleware
        if app.status is not AppStatus.INSTALLED:
            return  # nothing to roll back (clone, or already restarted)
        middleware.snapshot_manager.restore(app, snapshot)
        app.start(middleware)
        middleware.publish_app_event(app, "rolled-back")
        outcome.log(f"rolled back {app.name} at source "
                    f"{middleware.host_name} after transfer failure")

    # -- destination side (invoked by the middleware on MA arrival) --------

    def receive(self, ma: MDMobileAgent, outcome: Optional[MigrationOutcome]
                ) -> None:
        """Continue an arriving agent's pipeline past the hand-off phase.

        When the source-side context travelled with the outcome (the
        normal in-deployment case) the arrival completes its transfer
        phase; otherwise a destination-only context is synthesised so
        agents from foreign deployments still power up."""
        middleware = self.middleware
        ctx = None
        if outcome is not None:
            ctx = getattr(outcome, "_pipeline_ctx", None)
        if ctx is None:
            plan = plan_from_dict(ma.plan)
            pipeline = (middleware.prestage_pipeline if plan.prestage
                        else middleware.migration_pipeline)
            ctx = pipeline.arrival_context(middleware, ma, outcome)
        ctx.arrive(middleware, ma)
