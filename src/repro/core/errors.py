"""Exception hierarchy for the MDAgent middleware."""


class MiddlewareError(RuntimeError):
    """Base class for middleware failures."""


class ApplicationError(MiddlewareError):
    """Invalid application operation (bad lifecycle, unknown component...)."""


class MigrationError(MiddlewareError):
    """A migration could not be planned or executed."""


class PipelineError(MiddlewareError):
    """A middleware stack failed validation (mis-ordered, incomplete...)."""


class AdaptationError(MiddlewareError):
    """Post-migration adaptation failed."""


class SnapshotError(MiddlewareError):
    """Snapshot capture/restore failed."""
