"""Default rule sets for autonomous agents (paper Fig. 6).

The three published rules, verbatim in structure:

- Rule 1: ``locatedIn`` is transitive.
- Rule 2: resources of the same printer type are compatible.
- Rule 3: if source and destination resources are compatible and the
  network's response time is below a threshold (1000 ms in the paper), issue
  a ``move`` action.

:func:`default_migration_rules` generalizes Rule 2 to any resource class
(the compatibility facts themselves come from the semantic matcher) and
parameterizes Rule 3's threshold.
"""

from __future__ import annotations

from repro.ontology.rules import RuleSet, parse_rules

#: The paper's rules exactly as printed (Fig. 6), printer-specific Rule 2.
PAPER_FIG6_RULES = """
[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t)
     -> (?p imcl:locatedIn ?t)]
[Rule2: (?ptr imcl:printerObj 'printer'), (?srcRsc rdf:type ?ptr),
        (?destRsc imcl:printerObj ?ptr)
     -> (?srcRsc imcl:compatible ?destRsc)]
[Rule3: (?addr1 imcl:address ?value1), (?addr2 imcl:address ?value2),
        (?srcRsc imcl:compatible ?destRsc), (?n imcl:responseTime ?t),
        lessThan(?t, '1000'^^xsd:double)
     -> (?action imcl:actName 'move'), (?action imcl:srcAddress ?value1),
        (?action imcl:destAddress ?value2)]
"""


def paper_rules() -> RuleSet:
    """The verbatim Fig. 6 rule set."""
    return parse_rules(PAPER_FIG6_RULES)


def default_migration_rules(response_time_threshold_ms: float = 1000.0
                            ) -> RuleSet:
    """The rule set autonomous agents evaluate before commanding a move.

    Facts the decision engine asserts:

    - ``(imcl:src imcl:address '<source host>')`` /
      ``(imcl:dest imcl:address '<destination host>')``
    - ``(imcl:link imcl:responseTime '<rtt>'^^xsd:double)``
    - ``(<srcRsc> imcl:compatible <destRsc>)`` for each semantic match
    - ``(imcl:dest imcl:hasComponents 'true'/'false'^^xsd:boolean)``
    - ``(imcl:dest imcl:deviceCompatible 'true'/'false'^^xsd:boolean)``

    Derived actions:

    - ``move`` when the device fits and the network is fast enough;
    - ``carryAll`` additionally flags that the destination has no
      installation, so logic + UI must be wrapped too (the adaptive-binding
      decision of §5).
    """
    return parse_rules(f"""
[LocTrans: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t)
        -> (?p imcl:locatedIn ?t)]
[Move: (?src imcl:address ?value1), (?dest imcl:address ?value2),
       (?dest imcl:deviceCompatible 'true'^^xsd:boolean),
       (?net imcl:responseTime ?t),
       lessThan(?t, '{response_time_threshold_ms}'^^xsd:double)
    -> (?action imcl:actName 'move'), (?action imcl:srcAddress ?value1),
       (?action imcl:destAddress ?value2)]
[CarryAll: (?dest imcl:address ?value2),
           (?dest imcl:hasComponents 'false'^^xsd:boolean)
        -> (?dest imcl:carryPolicy 'full')]
[CarryDelta: (?dest imcl:address ?value2),
             (?dest imcl:hasComponents 'true'^^xsd:boolean)
          -> (?dest imcl:carryPolicy 'delta')]
""")
