"""Migration phase timing (the paper's measurement methodology).

The evaluation (§5) times three phases: **suspension**, **migration** and
**resumption**.  Suspension and resumption are measured on one host's clock;
migration spans two unsynchronized clocks, which the paper handles with the
Fig. 7 round-trip trick.  :class:`MigrationOutcome` records both true
simulated times (ground truth, available only because this is a simulation)
and host-local clock stamps, so the correction itself can be demonstrated
and validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, stdev
from typing import Callable, Dict, List

from repro.core.binding import MigrationPlan


@dataclass
class MigrationOutcome:
    """Observable result of one application migration."""

    plan: MigrationPlan
    started_at: float = 0.0
    suspend_done_at: float = 0.0
    migrate_done_at: float = 0.0
    resume_done_at: float = 0.0
    completed: bool = False
    failed: bool = False
    failure_reason: str = ""
    bytes_transferred: int = 0
    #: Host-local clock stamps for the Fig. 7 correction.
    depart_local: float = 0.0
    arrive_local: float = 0.0
    #: True (simulation) times of the agent's departure/arrival -- the
    #: ground truth the Fig. 7 correction is validated against.
    agent_departed_at: float = 0.0
    agent_arrived_at: float = 0.0
    #: Free-form event log (phase boundaries, rebinds, adaptations).
    events: List[str] = field(default_factory=list)
    #: Reliability accounting (appended with defaults so positional
    #: construction from before these existed keeps working): retries of
    #: the agent transfer, whether a retry resumed from a mid-transfer
    #: checkpoint, and duplicate deliveries swallowed at check-in.
    transfer_retries: int = 0
    transfer_resumed: bool = False
    dedup_hits: int = 0
    _callbacks: List[Callable[["MigrationOutcome"], None]] = field(
        default_factory=list, repr=False)

    # -- phases (paper Fig. 8/9 series) ------------------------------------

    @property
    def suspend_ms(self) -> float:
        return self.suspend_done_at - self.started_at

    @property
    def migrate_ms(self) -> float:
        return self.migrate_done_at - self.suspend_done_at

    @property
    def resume_ms(self) -> float:
        return self.resume_done_at - self.migrate_done_at

    @property
    def total_ms(self) -> float:
        return self.resume_done_at - self.started_at

    # -- completion ---------------------------------------------------------

    def on_complete(self, callback: Callable[["MigrationOutcome"], None]) -> None:
        if self.completed or self.failed:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _finish(self) -> None:
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()

    def log(self, message: str) -> None:
        self.events.append(message)

    def phases(self) -> Dict[str, float]:
        return {"suspend": self.suspend_ms, "migrate": self.migrate_ms,
                "resume": self.resume_ms, "total": self.total_ms}


@dataclass
class PhaseStats:
    """Aggregate of one phase over repeated runs.

    Percentile fields are appended with defaults so positional construction
    from before they existed keeps working.
    """

    phase: str
    mean_ms: float
    stdev_ms: float
    min_ms: float
    max_ms: float
    samples: int
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0


def summarize(outcomes: List[MigrationOutcome]) -> Dict[str, PhaseStats]:
    """Per-phase statistics over completed outcomes."""
    from repro.obs.metrics import percentile

    done = [o for o in outcomes if o.completed]
    stats: Dict[str, PhaseStats] = {}
    if not done:
        return stats
    for phase in ("suspend", "migrate", "resume", "total"):
        values = [o.phases()[phase] for o in done]
        stats[phase] = PhaseStats(
            phase=phase,
            mean_ms=mean(values),
            stdev_ms=stdev(values) if len(values) > 1 else 0.0,
            min_ms=min(values),
            max_ms=max(values),
            samples=len(values),
            p50_ms=percentile(values, 50.0),
            p95_ms=percentile(values, 95.0),
            p99_ms=percentile(values, 99.0),
        )
    return stats
