"""Snapshot management: consistent application state across migration.

"Before and after migration, application states should be consistent and
continual, so a state manager component should be provided" (paper §3.1).
The snapshot manager captures (coordinator shared state + app custom state +
component versions) into a plain-data :class:`Snapshot`, keeps a bounded
history, and can restore any snapshot into a compatible application
instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.agents.serialization import deep_size_bytes
from repro.core.application import Application
from repro.core.errors import SnapshotError


@dataclass
class Snapshot:
    """One captured application state."""

    app_name: str
    snapshot_id: int
    taken_at: float
    coordinator_state: Dict[str, Any]
    app_state: Dict[str, Any]
    component_versions: Dict[str, int]
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = (deep_size_bytes(self.coordinator_state)
                               + deep_size_bytes(self.app_state)
                               + deep_size_bytes(self.component_versions))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app_name": self.app_name,
            "snapshot_id": self.snapshot_id,
            "taken_at": self.taken_at,
            "coordinator_state": dict(self.coordinator_state),
            "app_state": dict(self.app_state),
            "component_versions": dict(self.component_versions),
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Snapshot":
        return cls(data["app_name"], data["snapshot_id"], data["taken_at"],
                   dict(data["coordinator_state"]), dict(data["app_state"]),
                   dict(data["component_versions"]), data.get("size_bytes", 0))


class SnapshotManager:
    """Captures and restores application snapshots; bounded history."""

    _ids = itertools.count(1)

    def __init__(self, max_history: int = 16):
        if max_history < 1:
            raise SnapshotError("max_history must be >= 1")
        self.max_history = max_history
        self._history: Dict[str, List[Snapshot]] = {}
        self.captures = 0
        self.restores = 0

    def capture(self, app: Application, now: float = 0.0) -> Snapshot:
        """Snapshot an application's full state (must not be mid-update)."""
        try:
            snapshot = Snapshot(
                app_name=app.name,
                snapshot_id=next(self._ids),
                taken_at=now,
                coordinator_state=app.coordinator.snapshot_state(),
                app_state=app.get_app_state(),
                component_versions={c.name: c.version for c in app.components},
            )
        except Exception as exc:
            raise SnapshotError(
                f"cannot capture snapshot of {app.name!r}: {exc}") from exc
        history = self._history.setdefault(app.name, [])
        history.append(snapshot)
        if len(history) > self.max_history:
            del history[0]
        self.captures += 1
        return snapshot

    def restore(self, app: Application, snapshot: Snapshot) -> None:
        """Load a snapshot into an application instance."""
        if snapshot.app_name != app.name:
            raise SnapshotError(
                f"snapshot of {snapshot.app_name!r} cannot restore "
                f"{app.name!r}")
        app.coordinator.restore_state(snapshot.coordinator_state)
        app.restore_app_state(dict(snapshot.app_state))
        self.restores += 1

    def latest(self, app_name: str) -> Optional[Snapshot]:
        history = self._history.get(app_name)
        return history[-1] if history else None

    def history(self, app_name: str) -> List[Snapshot]:
        return list(self._history.get(app_name, ()))

    def forget(self, app_name: str) -> None:
        self._history.pop(app_name, None)
