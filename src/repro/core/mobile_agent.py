"""The MDAgent mobile agent: wraps components and carries them.

"Mobile agent is not bounded to a specific component of applications;
instead it can wrap any serializable part and migrate to the destination"
(paper §4.3).  :class:`MDMobileAgent` is a plain migratable agent whose
state is exactly the wrapped cargo: an application manifest (the selected
components), a state snapshot, and the migration plan.  On arrival it hands
itself to the destination host's middleware, which unwraps, rebinds,
adapts and resumes.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.agents.agent import Agent
from repro.agents.serialization import register_agent_type


@register_agent_type
class MDMobileAgent(Agent):
    """Carries wrapped application components between hosts."""

    def __init__(self, local_name: str):
        super().__init__(local_name)
        #: Application manifest: shell + carried component dicts.
        self.manifest: Dict[str, Any] = {}
        #: Snapshot dict (SnapshotManager wire format).
        self.snapshot: Dict[str, Any] = {}
        #: Migration plan dict (plan_to_dict wire format).
        self.plan: Dict[str, Any] = {}

    def load_cargo(self, manifest: Dict[str, Any], snapshot: Dict[str, Any],
                   plan: Dict[str, Any]) -> None:
        self.manifest = manifest
        self.snapshot = snapshot
        self.plan = plan

    def get_state(self) -> Dict[str, Any]:
        return {"manifest": self.manifest, "snapshot": self.snapshot,
                "plan": self.plan}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.manifest = state["manifest"]
        self.snapshot = state["snapshot"]
        self.plan = state["plan"]

    def _hand_over(self) -> None:
        middleware = getattr(self.container.host, "middleware", None)
        if middleware is None:
            raise RuntimeError(
                f"host {self.container.host_name!r} runs no MDAgent "
                f"middleware; mobile agent {self.local_name!r} is stranded")
        middleware._on_mobile_agent_arrival(self)

    def after_move(self) -> None:
        """Check-in complete: hand the cargo to the local middleware."""
        self._hand_over()

    def after_clone(self) -> None:
        self._hand_over()
