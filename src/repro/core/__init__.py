"""MDAgent core: the paper's middleware contribution.

Public surface:

- :class:`Deployment` / :class:`MDAgentMiddleware` -- build scenarios and
  run applications (start here; see ``examples/quickstart.py``).
- :class:`Application` + component classes -- the two-level app model.
- :class:`MigrationKind` / :class:`BindingPolicy` / :class:`MigrationPlan`
  -- the Fig. 1 mobility matrix and the adaptive/static binding policies.
- :class:`MigrationOutcome` -- suspend/migrate/resume phase timings.
- :class:`DecisionEngine` -- the rule-driven migration decision.
- :class:`MiddlewarePhase` / :class:`MiddlewareContract` /
  :func:`validate_middleware_stack` -- the explicit migration pipeline
  and its deployment-time contract validator.
"""

from repro.core.adaptor import AdaptationChange, AdaptationReport, Adaptor
from repro.core.application import (
    Application,
    AppStatus,
    application_type,
    register_application_type,
)
from repro.core.autonomous_agent import (
    Decision,
    DecisionEngine,
    MDAutonomousAgent,
    MDMobileAgentManager,
)
from repro.core.binding import (
    BindingPolicy,
    BindingResolver,
    MigrationKind,
    MigrationPlan,
    ResourceRebind,
)
from repro.core.components import (
    Component,
    ComponentKind,
    DataComponent,
    LogicComponent,
    PresentationComponent,
    ResourceBinding,
    register_component_type,
)
from repro.core.coordinator import Coordinator, SyncRole
from repro.core.errors import (
    AdaptationError,
    ApplicationError,
    MiddlewareError,
    MigrationError,
    PipelineError,
    SnapshotError,
)
from repro.core.metrics import MigrationOutcome, PhaseStats, summarize
from repro.core.middleware import (
    Deployment,
    MDAgentMiddleware,
    MiddlewareConfig,
)
from repro.core.mobile_agent import MDMobileAgent
from repro.core.mobility import MobilityConfig, MobilityManager
from repro.core.pipeline import (
    CAPABILITY_PROTOCOL,
    MIDDLEWARE_CONTRACTS,
    MIGRATION_PROTOCOLS,
    MiddlewareContract,
    MiddlewarePhase,
    MigrationContext,
    MigrationPipeline,
    MigrationRequest,
    ValidationResult,
    build_migration_pipeline,
    build_prestage_pipeline,
    migration_phases,
    validate_middleware_stack,
)
from repro.core.profiles import (
    DeviceProfile,
    ResourceProfile,
    UserProfile,
    handheld_profile,
)
from repro.core.rulesets import default_migration_rules, paper_rules
from repro.core.snapshot import Snapshot, SnapshotManager

__all__ = [
    "CAPABILITY_PROTOCOL",
    "MIDDLEWARE_CONTRACTS",
    "MIGRATION_PROTOCOLS",
    "AdaptationChange",
    "AdaptationError",
    "AdaptationReport",
    "Adaptor",
    "AppStatus",
    "Application",
    "ApplicationError",
    "BindingPolicy",
    "BindingResolver",
    "Component",
    "ComponentKind",
    "Coordinator",
    "DataComponent",
    "Decision",
    "DecisionEngine",
    "Deployment",
    "DeviceProfile",
    "LogicComponent",
    "MDAgentMiddleware",
    "MDAutonomousAgent",
    "MDMobileAgent",
    "MDMobileAgentManager",
    "MiddlewareConfig",
    "MiddlewareContract",
    "MiddlewareError",
    "MiddlewarePhase",
    "MigrationContext",
    "MigrationError",
    "MigrationKind",
    "MigrationOutcome",
    "MigrationPipeline",
    "MigrationPlan",
    "MigrationRequest",
    "MobilityConfig",
    "MobilityManager",
    "PhaseStats",
    "PipelineError",
    "PresentationComponent",
    "ResourceBinding",
    "ResourceProfile",
    "ResourceRebind",
    "Snapshot",
    "SnapshotError",
    "SnapshotManager",
    "SyncRole",
    "UserProfile",
    "ValidationResult",
    "application_type",
    "build_migration_pipeline",
    "build_prestage_pipeline",
    "default_migration_rules",
    "handheld_profile",
    "migration_phases",
    "paper_rules",
    "register_application_type",
    "register_component_type",
    "summarize",
    "validate_middleware_stack",
]
