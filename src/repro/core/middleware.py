"""The per-host MDAgent middleware facade and the deployment builder.

:class:`MDAgentMiddleware` wires all four layers of Fig. 2 on one host:
sensors/context feed the resident autonomous agent, which commands the
mobile agent manager, which drives the application layer through the
coordinator / snapshot manager / adaptor.  :class:`Deployment` builds
multi-space, multi-host scenarios (network + topology + agent platform +
context kernel + registry) with a few calls.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.agents.acl import ACLMessage, Performative
from repro.agents.platform import AgentContainer, AgentPlatform
from repro.context.bus import ContextBus
from repro.context.classifier import ContextClassifier
from repro.context.fusion import IdentityRegistry, LocationFusion
from repro.context.model import (
    ContextEvent,
    TOPIC_APP,
    TOPIC_LOCATION,
    TOPIC_NETWORK,
    TOPIC_RAW_NETWORK,
    TOPIC_USER_COMMAND,
)
from repro.context.monitor import ContextMonitor, location_changed_condition
from repro.context.prediction import MarkovPredictor
from repro.context.sensors import CricketSensorNetwork, PhysicalWorld
from repro.context.store import ContextStore
from repro.core.adaptor import Adaptor
from repro.core.application import Application, AppStatus
from repro.core.autonomous_agent import MDAutonomousAgent, MDMobileAgentManager
from repro.core.binding import (
    BindingPolicy,
    BindingResolver,
    MigrationKind,
    MigrationPlan,
)
from repro.core.errors import MigrationError, MiddlewareError
from repro.core.metrics import MigrationOutcome
from repro.core.mobile_agent import MDMobileAgent
from repro.core.mobility import MobilityConfig, MobilityManager
from repro.core.pipeline import (
    MigrationContext,
    MigrationRequest,
    build_migration_pipeline,
    build_prestage_pipeline,
)
from repro.core.profiles import DeviceProfile
from repro.core.snapshot import SnapshotManager
from repro.net.kernel import EventLoop
from repro.net.simnet import (
    Host,
    Message,
    Network,
    NetworkError,
    register_bulk_protocol,
)
from repro.net.topology import LinkSpec, Topology
from repro.registry.records import ApplicationRecord, InterfaceDescription, Operation
from repro.registry.registry import (
    CachingRegistryClient,
    RegistryClient,
    RegistryServer,
    install_registry,
)

SYNC_PROTOCOL = "md.sync"
DATA_PROTOCOL = "md.data"
# Remote-data streaming moves multi-MB payloads: classify it as bulk so it
# fair-shares links with agent transfers instead of head-of-line blocking
# sync/ACL control traffic (md.sync stays control).
register_bulk_protocol(DATA_PROTOCOL)


@dataclass
class MiddlewareConfig:
    """Tunables for one middleware instance."""

    #: Rule 3's network threshold: migrate only when RTT is below this.
    response_time_threshold_ms: float = 1000.0
    #: Adaptive binding: data up to this size is carried, larger stays
    #: remote when absent at the destination.
    data_carry_threshold_bytes: int = 512_000
    #: RTT assumed when no probe measurement exists yet.
    probe_default_rtt_ms: float = 10.0
    #: Wire size of one coordinator sync update.
    sync_message_size: int = 96
    #: How autonomous agents pick among several compatible destination
    #: hosts: "first-fit" (deterministic order) or "contract-net" (CFP to
    #: every candidate's MA manager, award to the least-loaded bidder).
    destination_strategy: str = "first-fit"
    #: TTL of the middleware's registry read cache; 0 disables caching
    #: (every planning lookup pays the round trip).
    registry_cache_ttl_ms: float = 0.0
    #: Migration protocol: "direct" (classic homogeneous deployment, the
    #: capability grant is implicit and free) or "fipa" (pre-transfer
    #: propose/accept-proposal/reject-proposal negotiation over ACL).
    migration_protocol: str = "direct"
    #: Capability tuple advertised during FIPA negotiation.
    platform_kind: str = "mdagent"
    serialization_version: int = 1
    #: Foreign platform kinds this middleware agrees to host (its own
    #: kind is always accepted).
    accepted_platform_kinds: Tuple[str, ...] = ()
    #: Deadline for one FIPA negotiation round trip.
    negotiation_timeout_ms: float = 5_000.0
    #: Per-attempt deadline on remote-data fetches; 0 keeps the classic
    #: no-deadline behaviour (the default, so pinned traces are stable).
    remote_fetch_timeout_ms: float = 0.0
    #: Fetch attempts (with the platform cost model's seeded backoff)
    #: before the failure is reported to the caller.
    remote_fetch_retries: int = 3
    mobility: MobilityConfig = field(default_factory=MobilityConfig)


class MDAgentMiddleware:
    """The middleware runtime on one host."""

    def __init__(self, deployment: "Deployment", host: Host,
                 container: AgentContainer, device_profile: DeviceProfile,
                 config: Optional[MiddlewareConfig] = None,
                 platform_kind: Optional[str] = None,
                 accepted_platform_kinds: Optional[Tuple[str, ...]] = None):
        self.deployment = deployment
        self.host = host
        self.container = container
        self.device_profile = device_profile
        self.config = config if config is not None else MiddlewareConfig()
        # Interop identity (per-host overrides beat the config defaults).
        self.platform_kind = platform_kind or self.config.platform_kind
        self.accepted_platform_kinds = tuple(
            accepted_platform_kinds if accepted_platform_kinds is not None
            else self.config.accepted_platform_kinds)
        self.serialization_version = self.config.serialization_version
        # The validated middleware stacks this host runs migrations with.
        self.migration_pipeline = build_migration_pipeline(self.config)
        self.prestage_pipeline = build_prestage_pipeline(self.config)
        #: Test seam: phase names after which an injected failure fires.
        self.pipeline_failpoints: frozenset = frozenset()
        self.applications: Dict[str, Application] = {}
        self.snapshot_manager = SnapshotManager()
        self.adaptor = Adaptor()
        self.resolver = BindingResolver(self.config.data_carry_threshold_bytes)
        self.mobility_manager = MobilityManager(self, self.config.mobility)
        if deployment.federation is not None:
            self.registry_client = deployment.federation.client_for(host.name)
        elif self.config.registry_cache_ttl_ms > 0:
            self.registry_client = CachingRegistryClient(
                deployment.network, host.name, deployment.registry_host,
                cache_ttl_ms=self.config.registry_cache_ttl_ms)
        else:
            self.registry_client = RegistryClient(
                deployment.network, host.name, deployment.registry_host)
        self._response_times: Dict[str, float] = {}
        self._fetch_callbacks: Dict[int, Callable[[], None]] = {}
        self._fetch_requests: Dict[int, Dict[str, Any]] = {}
        self._fetch_ids = itertools.count(1)
        host.middleware = self  # type: ignore[attr-defined]
        host.register_handler(SYNC_PROTOCOL, self._on_sync)
        host.register_handler(DATA_PROTOCOL, self._on_data)
        # Resident agents (Fig. 2's agent layer).
        self.aa: MDAutonomousAgent = container.create_agent(
            MDAutonomousAgent, f"aa-{host.name}")
        self.aa.attach(self)
        self.mam: MDMobileAgentManager = container.create_agent(
            MDMobileAgentManager, f"mam-{host.name}")
        self.mam.attach(self)
        if self.config.migration_protocol == "fipa":
            # Only the FIPA protocol serves capability proposals; the
            # default deployment registers no extra behaviour so its
            # kernel trace stays byte-identical to the monolith's.
            self.mam.enable_capability_responder()
        # Context bridges: location events and explicit user commands wake
        # the AA; network probes feed the response-time cache Rule 3
        # thresholds against.
        deployment.bus.subscribe(TOPIC_LOCATION, self._bridge_location)
        deployment.bus.subscribe(TOPIC_USER_COMMAND, self._bridge_command)
        deployment.bus.subscribe(
            TOPIC_RAW_NETWORK, self._on_network_probe,
            predicate=lambda e: e.subject == host.name)

    # -- identity -----------------------------------------------------------

    @property
    def host_name(self) -> str:
        return self.host.name

    @property
    def loop(self) -> EventLoop:
        return self.deployment.loop

    @property
    def network(self) -> Network:
        return self.deployment.network

    @property
    def ma_manager_aid(self) -> str:
        return f"mam-{self.host_name}@{self.host_name}"

    # -- application management -------------------------------------------------

    def install_application(self, app: Application,
                            register: bool = True) -> Application:
        """Make an application (or partial installation) present here."""
        if app.name in self.applications:
            raise MiddlewareError(
                f"application {app.name!r} already installed on "
                f"{self.host_name!r}")
        self.applications[app.name] = app
        app.host = self.host_name
        app.coordinator.host = self.host_name
        app.coordinator.attach_sync_transport(self._send_sync)
        if register:
            self.registry_client.call(
                "register_application",
                {"record": self._application_record(app).to_dict()},
                lambda result, error: None)
        return app

    def launch_application(self, app: Application) -> Application:
        """Install, adapt and start an application on this host.

        Raises AdaptationError when this device cannot satisfy the app's
        hard requirements.
        """
        if app.name not in self.applications:
            self.install_application(app)
        self.adaptor.adapt(app, self.device_profile, app.user_profile)
        app.start(self)
        self.publish_app_event(app, "started")
        return app

    def uninstall_application(self, app_name: str) -> None:
        app = self.applications.pop(app_name, None)
        if app is None:
            return
        if app.status is AppStatus.RUNNING:
            app.stop()
        # Lifecycle listeners (e.g. the pre-staging service's staged-pair
        # invalidation) need to hear about explicit stops too.
        self.publish_app_event(app, "stopped")
        self.registry_client.call(
            "deregister_application",
            {"app_name": app_name, "host": self.host_name},
            lambda result, error: None)

    def application(self, name: str) -> Application:
        try:
            return self.applications[name]
        except KeyError:
            raise MiddlewareError(
                f"no application {name!r} on {self.host_name!r}") from None

    def register_resource(self, resource_id: str, classes: List[str],
                          properties: Optional[Dict[str, Any]] = None) -> None:
        """Advertise a local resource to the registry center."""
        self.registry_client.call(
            "register_resource",
            {"record": {"resource_id": resource_id, "host": self.host_name,
                        "classes": list(classes),
                        "properties": dict(properties or {})}},
            lambda result, error: None)

    def _application_record(self, app: Application) -> ApplicationRecord:
        return ApplicationRecord(
            app_name=app.name,
            host=self.host_name,
            components=app.component_kinds(),
            interface=InterfaceDescription(
                app.name,
                [Operation("suspend"), Operation("resume"),
                 Operation("update", ["key", "value"])],
                binding=f"acl://{self.ma_manager_aid}",
            ),
            device_requirements=dict(app.device_requirements),
            user_preferences=dict(app.user_profile.preferences),
        )

    # -- migration ------------------------------------------------------------------

    def migrate(self, app_name: str, destination: str,
                kind: MigrationKind = MigrationKind.FOLLOW_ME,
                policy: BindingPolicy = BindingPolicy.ADAPTIVE
                ) -> MigrationOutcome:
        """Plan and execute a migration through the middleware pipeline;
        returns the (async) outcome.

        The pipeline runs the declared stack -- admission, planning,
        capability negotiation, suspend, capture, transfer, check-in,
        rebind, power-up -- with planning's registry lookups happening
        before the measured suspension phase begins, which matches the
        paper's measurement window.  Admission errors (unknown app, bad
        destination) raise synchronously; everything later fails the
        outcome.
        """
        request = MigrationRequest(app_name=app_name,
                                   destination=destination,
                                   kind=kind, policy=policy)
        ctx = MigrationContext(self.migration_pipeline, self, request,
                               failpoints=self.pipeline_failpoints)
        self.migration_pipeline.start(ctx)
        return ctx.outcome

    def prestage(self, app_name: str, destination: str) -> MigrationOutcome:
        """Push this app's missing components to ``destination`` ahead of a
        predicted move; execution stays here, but a later migration finds
        the components installed and wraps only the state."""
        request = MigrationRequest(app_name=app_name,
                                   destination=destination, prestage=True)
        ctx = MigrationContext(self.prestage_pipeline, self, request,
                               failpoints=self.pipeline_failpoints)
        self.prestage_pipeline.start(ctx)
        return ctx.outcome

    # -- FIPA capability negotiation ---------------------------------------

    def capability_proposal(self, plan: MigrationPlan) -> Dict[str, Any]:
        """The capability tuple PROPOSEd to a destination pre-transfer."""
        app = self.applications.get(plan.app_name)
        resource_classes: List[str] = []
        requirements: Dict[str, Any] = {}
        if app is not None:
            seen = set()
            for binding in app.resource_bindings:
                if binding.resource_class not in seen:
                    seen.add(binding.resource_class)
                    resource_classes.append(binding.resource_class)
            requirements = dict(app.device_requirements)
        return {
            "action": "migrate-propose",
            "app_name": plan.app_name,
            "source": plan.source,
            "destination": plan.destination,
            "kind": plan.kind.value,
            "platform_kind": self.platform_kind,
            "serialization_version": self.serialization_version,
            "estimated_bytes": plan.estimated_bytes,
            "resource_classes": resource_classes,
            "device_requirements": requirements,
        }

    def evaluate_migration_proposal(self, proposal: Dict[str, Any]
                                    ) -> Tuple[bool, Dict[str, Any]]:
        """Destination-side policy for a FIPA capability proposal.

        Returns ``(accept, payload)``: on accept the payload is this
        host's capability grant, on reject it carries the reason.  A
        rejection here is *graceful* -- the source has not suspended
        anything yet, so its application keeps running.
        """
        version = proposal.get("serialization_version")
        if version != self.serialization_version:
            return False, {"reason": f"serialization version {version!r} "
                                     f"unsupported (speaks "
                                     f"v{self.serialization_version})"}
        kind = proposal.get("platform_kind")
        accepted = {self.platform_kind, *self.accepted_platform_kinds}
        if kind not in accepted:
            return False, {"reason": f"platform kind {kind!r} not accepted "
                                     f"(accepts {sorted(accepted)})"}
        requirements = proposal.get("device_requirements") or {}
        if not self.device_profile.satisfies(requirements):
            return False, {"reason": "device profile cannot satisfy the "
                                     "application's requirements"}
        return True, {"platform_kind": self.platform_kind,
                      "serialization_version": self.serialization_version,
                      "host": self.host_name}

    @staticmethod
    def _fail(outcome: MigrationOutcome, reason: str) -> None:
        outcome.failed = True
        outcome.failure_reason = reason
        outcome._finish()

    def _on_mobile_agent_arrival(self, ma: MDMobileAgent) -> None:
        token = ma.plan.get("token", "")
        outcome = self.deployment.outcomes.get(token)
        try:
            self.mobility_manager.receive(ma, outcome)
        except Exception as exc:
            # Unwrapping failed (e.g. unregistered application type at the
            # destination); surface through the outcome instead of crashing
            # the destination host's event handling.
            if outcome is not None:
                self._fail(outcome, f"unwrap failed at {self.host_name}: "
                                    f"{exc}")
            ma.do_delete()

    # -- coordinator sync links ---------------------------------------------------------

    def _send_sync(self, peer_host: str, app_name: str, key: str, value: Any,
                   origin_host: str) -> None:
        self.network.send(self.host_name, peer_host, SYNC_PROTOCOL,
                          ("update", app_name, key, value, origin_host),
                          self.config.sync_message_size)

    def establish_sync_replica(self, app: Application,
                               master_host: str) -> None:
        """Configure a freshly arrived clone as a sync replica."""
        app.coordinator.attach_sync_transport(self._send_sync)
        app.coordinator.become_replica(master_host)
        self.network.send(self.host_name, master_host, SYNC_PROTOCOL,
                          ("control", "add_replica", app.name,
                           self.host_name), 64)

    def assume_sync_master(self, app: Application,
                           replicas: List[str]) -> None:
        """Take over as sync master (after a master migrated here)."""
        app.coordinator.attach_sync_transport(self._send_sync)
        app.coordinator.become_master()
        for replica in replicas:
            if replica == self.host_name:
                continue
            app.coordinator.add_replica(replica)
            self.network.send(self.host_name, replica, SYNC_PROTOCOL,
                              ("control", "set_master", app.name,
                               self.host_name), 64)

    def _on_sync(self, message: Message) -> None:
        # Sync traffic can legally race a migration: the app may already be
        # suspended, stopped or uninstalled here when the update lands.
        # Nothing that arrives over this protocol may raise through
        # Host.deliver -- drop and account instead.
        try:
            self._handle_sync(message)
        except Exception as exc:
            self._drop_middleware_message(SYNC_PROTOCOL, message, exc)

    def _handle_sync(self, message: Message) -> None:
        payload = message.payload
        if payload[0] == "update":
            _, app_name, key, value, origin = payload
            app = self.applications.get(app_name)
            if app is not None:
                app.coordinator.apply_remote_update(key, value, origin)
        elif payload[0] == "control" and payload[1] == "add_replica":
            _, _, app_name, replica_host = payload
            app = self.applications.get(app_name)
            if app is not None:
                if app.coordinator.sync_role.value != "master":
                    app.coordinator.become_master()
                app.coordinator.add_replica(replica_host)
        elif payload[0] == "control" and payload[1] == "set_master":
            _, _, app_name, master_host = payload
            app = self.applications.get(app_name)
            if app is not None and \
                    app.coordinator.sync_role.value == "replica":
                app.coordinator.master_host = master_host

    # -- remote data streaming -------------------------------------------------------------

    def fetch_remote_data(self, source_host: str, app_name: str,
                          nbytes: int, callback: Callable[[], None],
                          on_failed: Optional[Callable[[str], None]] = None
                          ) -> None:
        """Fetch ``nbytes`` of a remote-bound data component from its home.

        Pays a request trip plus the data transfer; the callback fires when
        the bytes arrive (stream opened / first buffer filled).

        With ``config.remote_fetch_timeout_ms`` set, every attempt is
        armed with a deadline: a crashed or partitioned source no longer
        hangs the destination's resume forever.  Timed-out attempts retry
        with the platform cost model's seeded backoff, and after
        ``remote_fetch_retries`` attempts the failure is reported through
        ``on_failed`` (or dropped with a fault emit when no handler was
        given).
        """
        if nbytes <= 0 or source_host == self.host_name:
            self.loop.call_soon(callback)
            return
        token = next(self._fetch_ids)
        self._fetch_callbacks[token] = callback
        self._fetch_requests[token] = {
            "source": source_host, "app_name": app_name, "nbytes": nbytes,
            "on_failed": on_failed, "attempt": 0, "timer": None,
        }
        self._fetch_send(token)

    def _fetch_send(self, token: int) -> None:
        request = self._fetch_requests.get(token)
        if request is None:
            return
        request["attempt"] += 1
        timeout = self.config.remote_fetch_timeout_ms
        if timeout > 0:
            request["timer"] = self.loop.call_later(
                timeout, self._fetch_timeout, token)
        try:
            self.network.send(
                self.host_name, request["source"], DATA_PROTOCOL,
                ("fetch", token, request["app_name"], request["nbytes"],
                 self.host_name), 256)
        except NetworkError as exc:
            # The source is already unreachable at send time.  With a
            # deadline armed the timeout path retries/fails the request;
            # without one, fail immediately rather than propagating out
            # of the caller (often a timer callback).
            self._emit_fault("fetch-send-failed", token=token,
                            source=request["source"], reason=str(exc))
            if timeout <= 0:
                self._fetch_fail(token, f"remote fetch from "
                                        f"{request['source']} failed: {exc}")

    def _fetch_timeout(self, token: int) -> None:
        request = self._fetch_requests.get(token)
        if request is None:
            return
        request["timer"] = None
        source = request["source"]
        self._emit_fault("fetch-timeout", token=token, source=source,
                         attempt=request["attempt"])
        if request["attempt"] >= max(1, self.config.remote_fetch_retries):
            self._fetch_fail(
                token, f"remote fetch from {source} timed out after "
                       f"{request['attempt']} attempts")
            return
        backoff = self.deployment.platform.mobility.cost_model.backoff_ms(
            request["attempt"] - 1, key=f"fetch-{self.host_name}-{token}")
        request["timer"] = self.loop.call_later(backoff, self._fetch_retry,
                                                token)

    def _fetch_retry(self, token: int) -> None:
        self._fetch_send(token)

    def _fetch_fail(self, token: int, reason: str) -> None:
        request = self._fetch_requests.pop(token, None)
        self._fetch_callbacks.pop(token, None)
        if request is None:
            return
        timer = request.get("timer")
        if timer is not None:
            timer.cancel()
        on_failed = request.get("on_failed")
        if on_failed is not None:
            on_failed(reason)
        else:
            self._emit_fault("fetch-failed", token=token, reason=reason)

    def _on_data(self, message: Message) -> None:
        try:
            self._handle_data(message)
        except NetworkError as exc:
            # The requester crashed or roamed offline between asking and
            # being served: drop the reply instead of raising through
            # Host.deliver on the serving host.
            self._drop_middleware_message(DATA_PROTOCOL, message, exc)

    def _handle_data(self, message: Message) -> None:
        payload = message.payload
        if payload[0] == "fetch":
            _, token, app_name, nbytes, requester = payload
            self.network.send(self.host_name, requester, DATA_PROTOCOL,
                              ("data", token, app_name), nbytes)
        elif payload[0] == "data":
            _, token, _app_name = payload
            request = self._fetch_requests.pop(token, None)
            if request is not None and request.get("timer") is not None:
                request["timer"].cancel()
            callback = self._fetch_callbacks.pop(token, None)
            if callback is not None:
                callback()

    def _drop_middleware_message(self, protocol: str, message: Message,
                                 exc: Exception) -> None:
        """Account a dropped sync/data message (fault emit + counter)."""
        payload = message.payload
        kind = payload[0] if isinstance(payload, tuple) and payload else "?"
        self._emit_fault(
            "sync-drop" if protocol == SYNC_PROTOCOL else "data-drop",
            payload_kind=str(kind), reason=str(exc))

    def _emit_fault(self, kind: str, **detail: Any) -> None:
        obs = self.loop.observability
        if obs is not None:
            if obs.hooks:
                obs.emit(f"fault.{kind}", host=self.host_name,
                         t=self.loop.now, **detail)
            obs.metrics.counter("fault.middleware", kind=kind).inc()

    # -- context plumbing ------------------------------------------------------------------

    def _bridge_location(self, event: ContextEvent) -> None:
        """Forward fused location events to the resident AA as INFORM."""
        message = ACLMessage(
            Performative.INFORM,
            sender=f"context-bridge@{self.host_name}",
            receivers=[f"aa-{self.host_name}@{self.host_name}"],
            content={"topic": event.topic, "subject": event.subject,
                     "location": event.get("location"),
                     "previous": event.get("previous")},
        )
        self.aa.post(message)

    def _bridge_command(self, event: ContextEvent) -> None:
        """Forward explicit user commands ("move my app there") to the AA."""
        message = ACLMessage(
            Performative.INFORM,
            sender=f"context-bridge@{self.host_name}",
            receivers=[f"aa-{self.host_name}@{self.host_name}"],
            content={"topic": event.topic, "subject": event.subject,
                     "action": event.get("action"),
                     "app_name": event.get("app_name"),
                     "destination": event.get("destination")},
        )
        self.aa.post(message)

    def _on_network_probe(self, event: ContextEvent) -> None:
        peer = event.get("peer")
        rtt = event.get("response_time_ms")
        if peer is not None and rtt is not None:
            self._response_times[peer] = float(rtt)
            self.deployment.bus.publish(ContextEvent(
                topic=TOPIC_NETWORK, subject=f"{self.host_name}->{peer}",
                attributes={"response_time_ms": rtt},
                timestamp=self.loop.now, source="middleware"))

    def measured_response_time(self, peer: str) -> float:
        """Latest probed RTT to ``peer``, or the configured default."""
        return self._response_times.get(peer,
                                        self.config.probe_default_rtt_ms)

    def publish_app_event(self, app: Application, what: str) -> None:
        self.deployment.bus.publish(ContextEvent(
            topic=TOPIC_APP, subject=app.name,
            attributes={"event": what, "host": self.host_name,
                        "owner": app.owner},
            timestamp=self.loop.now, source="middleware"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MDAgentMiddleware {self.host_name} "
                f"apps={sorted(self.applications)}>")


@dataclass
class ScheduledMigration:
    """Handle for one migration submitted to the :class:`MigrationScheduler`.

    ``outcome`` stays ``None`` while the request waits in the admission
    queue; once admitted it is the live :class:`MigrationOutcome`.
    """

    app_name: str
    source: str
    destination: str
    kind: MigrationKind
    policy: BindingPolicy
    deadline_ms: Optional[float]
    seq: int
    queued_at: float = 0.0
    admitted_at: float = 0.0
    state: str = "queued"  # queued | active | done | rejected
    error: str = ""
    outcome: Optional[MigrationOutcome] = None
    #: Optional callback fired exactly once when the request leaves the
    #: scheduler (state "done" or "rejected").  Streaming drivers
    #: (:mod:`repro.city`) use it to track app placement across tens of
    #: thousands of legs without polling handles.
    on_done: Optional[Callable[["ScheduledMigration"], None]] = None

    @property
    def queue_wait_ms(self) -> float:
        return self.admitted_at - self.queued_at

    def sort_key(self) -> Tuple[float, int]:
        # Deadline-aware ordering: earliest deadline first, FIFO tiebreak
        # (and FIFO among requests with no deadline at all).
        deadline = self.deadline_ms if self.deadline_ms is not None \
            else float("inf")
        return (deadline, self.seq)


class MigrationScheduler:
    """Admission control for concurrent migrations in one deployment.

    The fair-share link model lets migrations overlap, but unbounded
    concurrency thrashes: every flow's share shrinks and *every* deadline
    slips.  The scheduler admits at most ``limit`` migrations at a time,
    serializes per destination (one inbound migration per host -- a
    resuming host is busy restoring state), and orders the waiting queue
    by earliest deadline with FIFO tiebreak.  Slots release through each
    outcome's completion callback, so draining the event loop drives the
    whole queue.
    """

    def __init__(self, deployment: "Deployment", limit: int = 4):
        if limit < 1:
            raise MiddlewareError(f"admission limit must be >= 1: {limit}")
        self.deployment = deployment
        self.limit = int(limit)
        self._seq = itertools.count(1)
        self._pending: List[ScheduledMigration] = []
        self._busy_destinations: set = set()
        self.active = 0
        self.admitted = 0
        self.completed = 0
        self.rejected = 0
        self.max_queue_depth = 0
        #: Every handle ever submitted, in submission order -- the fleet
        #: SLO aggregator (:mod:`repro.obs.slo`) reads queue waits and
        #: deadline outcomes from here after the run drains.
        self.requests: List[ScheduledMigration] = []

    def submit(self, source: str, app_name: str, destination: str,
               kind: MigrationKind = MigrationKind.FOLLOW_ME,
               policy: BindingPolicy = BindingPolicy.ADAPTIVE,
               deadline_ms: Optional[float] = None,
               on_done: Optional[Callable[[ScheduledMigration], None]] = None
               ) -> ScheduledMigration:
        """Queue a migration; it starts as soon as a slot and its
        destination are free.  Returns a handle immediately."""
        request = ScheduledMigration(
            app_name=app_name, source=source, destination=destination,
            kind=kind, policy=policy, deadline_ms=deadline_ms,
            seq=next(self._seq), queued_at=self.deployment.loop.now,
            on_done=on_done)
        self._pending.append(request)
        self.requests.append(request)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        self._emit("scheduler.submit", request)
        self._pump()
        return request

    def _emit(self, event: str, request: ScheduledMigration) -> None:
        """Publish a scheduler transition to obs hooks (flight recorder,
        invariant checkers); free when no hooks are registered."""
        obs = self.deployment.observability
        if obs is not None and obs.hooks:
            obs.emit(event, app=request.app_name, source=request.source,
                     destination=request.destination, state=request.state,
                     queued=len(self._pending), active=self.active)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def _pump(self) -> None:
        # Single-pass min over the queue (no admissible-list allocation):
        # at city scale this runs once per released slot over queues that
        # spike into the thousands at rush hour.
        while self.active < self.limit:
            busy = self._busy_destinations
            request = None
            best_key = None
            for candidate in self._pending:
                if candidate.destination in busy:
                    continue
                key = candidate.sort_key()
                if best_key is None or key < best_key:
                    request, best_key = candidate, key
            if request is None:
                return
            self._pending.remove(request)
            self._admit(request)

    def _admit(self, request: ScheduledMigration) -> None:
        deployment = self.deployment
        request.admitted_at = deployment.loop.now
        try:
            outcome = deployment.middleware(request.source).migrate(
                request.app_name, request.destination,
                kind=request.kind, policy=request.policy)
        except (MigrationError, MiddlewareError) as exc:
            # e.g. an earlier admitted migration already moved the app
            # away from the recorded source; surface it on the handle.
            request.state = "rejected"
            request.error = str(exc)
            self.rejected += 1
            self._emit("scheduler.reject", request)
            if request.on_done is not None:
                request.on_done(request)
            return
        request.state = "active"
        request.outcome = outcome
        self.active += 1
        self.admitted += 1
        self._busy_destinations.add(request.destination)
        self._emit("scheduler.admit", request)
        outcome.log(f"scheduler: admitted after {request.queue_wait_ms:.1f} "
                    f"ms in queue ({self.active}/{self.limit} slots)")
        outcome.on_complete(lambda _o, r=request: self._release(r))

    def _release(self, request: ScheduledMigration) -> None:
        if request.state != "active":
            # Already released (or never admitted): an outcome that fails
            # during negotiation/pre-transfer and again later -- or a
            # duplicate completion callback -- must not decrement the
            # active count twice and wedge the queue.
            return
        request.state = "done"
        self.active -= 1
        self.completed += 1
        self._busy_destinations.discard(request.destination)
        self._emit("scheduler.release", request)
        # Notify before re-pumping: a follow-up leg submitted from the
        # callback competes for the slot this release just freed.
        if request.on_done is not None:
            request.on_done(request)
        self._pump()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MigrationScheduler {self.active}/{self.limit} active, "
                f"{len(self._pending)} queued>")


class Deployment:
    """Builds and owns a full MDAgent scenario.

    Typical use::

        d = Deployment(seed=1)
        d.add_space("room821")
        src = d.add_host("pc1", "room821")
        dst = d.add_host("pc2", "room821")       # intra-space peer
        # inter-space requires gateways:
        d.add_space("room822")
        d.add_gateway("gw821", "room821")
        d.add_gateway("gw822", "room822")
        d.connect_spaces("room821", "room822")
        ...
        d.run_all()
    """

    def __init__(self, seed: int = 0,
                 config: Optional[MiddlewareConfig] = None,
                 backbone: Optional[LinkSpec] = None,
                 observability=None,
                 faults=None):
        self.loop = EventLoop()
        # Install tracing/metrics hooks before anything can schedule events.
        self.observability = observability
        if observability is not None:
            observability.attach(self.loop)
        self.network = Network(self.loop, seed=seed)
        self.topology = Topology(self.network, backbone=backbone)
        self.platform = AgentPlatform(self.network)
        self.bus = ContextBus(self.loop)
        self.store = ContextStore()
        self.classifier = ContextClassifier(self.bus, self.store)
        self.monitor = ContextMonitor(self.bus, self.store)
        self.monitor.add_condition(location_changed_condition())
        self.identities = IdentityRegistry()
        self.world = PhysicalWorld()
        self.fusion = LocationFusion(self.bus, self.identities)
        self.predictor = MarkovPredictor()
        # The predictor learns from every fused location event.
        self.bus.subscribe(
            TOPIC_LOCATION,
            lambda e: self.predictor.observe(e.subject, e.get("location"))
            if e.get("location") else None)
        self.sensors: Optional[CricketSensorNetwork] = None
        self.config = config if config is not None else MiddlewareConfig()
        self.middlewares: Dict[str, MDAgentMiddleware] = {}
        self.device_profiles: Dict[str, DeviceProfile] = {}
        self.registry_server: Optional[RegistryServer] = None
        self.registry_host: Optional[str] = None
        self.outcomes: Dict[str, MigrationOutcome] = {}
        self._outcome_seq = itertools.count(1)
        self.prestaging = None
        self.scheduler: Optional[MigrationScheduler] = None
        #: Federated registry (optional) -- see enable_federated_registry().
        self.federation = None
        # Fault injection (optional): the chaos engine arms per its config
        # ("first-migration" by default) and replays its plan on the loop.
        self.chaos = None
        if faults is not None and faults.enabled:
            from repro.faults.engine import ChaosEngine
            self.chaos = ChaosEngine(self, faults)

    def _arm_chaos(self, trigger: str) -> None:
        if self.chaos is not None and self.chaos.config.arm == trigger:
            self.chaos.arm()

    # -- construction ------------------------------------------------------

    def enable_federated_registry(self, cache_ttl_ms: float = 2_000.0,
                                  auto_shards: bool = True):
        """Replace the flat registry center with the per-space federation.

        Must run before any host is added.  With ``auto_shards`` every
        :meth:`add_gateway` call installs that space's shard on the
        gateway; custom placement (e.g. the city's hub aggregation) sets
        it to False and installs shards/aggregators explicitly.  The
        first host still provides the fallback shard, which owns records
        of spaces without one.
        """
        if self.federation is not None:
            return self.federation
        if self.middlewares or self.registry_host is not None:
            raise MiddlewareError(
                "enable_federated_registry() must run before hosts are added")
        from repro.registry.federation import RegistryFederation
        self.federation = RegistryFederation(self, cache_ttl_ms=cache_ttl_ms)
        self.federation.auto_shards = auto_shards
        self.federation.attach_bus(self.bus, TOPIC_APP)
        return self.federation

    def add_space(self, name: str, lan: Optional[LinkSpec] = None):
        return self.topology.add_space(name, lan)

    def add_host(self, name: str, space: str,
                 profile: Optional[DeviceProfile] = None,
                 skew_ms: float = 0.0, drift_ppm: float = 0.0,
                 platform_kind: Optional[str] = None,
                 accepted_platform_kinds: Optional[Tuple[str, ...]] = None
                 ) -> MDAgentMiddleware:
        """Create a host in a space and start a middleware on it.

        The first host added also becomes the registry center unless
        :meth:`install_registry` ran earlier.  ``platform_kind`` and
        ``accepted_platform_kinds`` override the config defaults for
        mixed-platform (FIPA interop) deployments.
        """
        profile = profile if profile is not None else DeviceProfile(host=name)
        host = self.topology.add_host(name, space, skew_ms=skew_ms,
                                      drift_ppm=drift_ppm,
                                      cpu_factor=profile.cpu_factor)
        if self.registry_host is None:
            if self.federation is not None:
                self.federation.install_fallback(name)
            else:
                self.registry_server = install_registry(self.network, name)
            self.registry_host = name
        container = self.platform.create_container(name)
        middleware = MDAgentMiddleware(
            self, host, container, profile, self.config,
            platform_kind=platform_kind,
            accepted_platform_kinds=accepted_platform_kinds)
        self.middlewares[name] = middleware
        self.device_profiles[name] = profile
        return middleware

    def install_registry(self, space: str, host_name: str = "registry"):
        """Dedicate a host to the registry center (call before add_host).

        Under a federation this host carries the fallback shard instead
        of the flat center (returns the host's FederationNode).
        """
        if self.registry_host is not None:
            raise MiddlewareError("registry already installed")
        self.topology.add_host(host_name, space)
        self.registry_host = host_name
        if self.federation is not None:
            return self.federation.install_fallback(host_name)
        self.registry_server = install_registry(self.network, host_name)
        return self.registry_server

    def add_gateway(self, name: str, space: str,
                    processing_delay_ms: float = 5.0):
        gateway = self.topology.add_gateway(name, space, processing_delay_ms)
        if (self.federation is not None and self.federation.auto_shards
                and space not in self.federation.shards):
            self.federation.install_shard(space, name)
        return gateway

    def connect_spaces(self, space_a: str, space_b: str,
                       spec: Optional[LinkSpec] = None) -> None:
        self.topology.connect_spaces(space_a, space_b, spec)

    def enable_prestaging(self, probability_threshold: float = 0.5):
        """Start predictor-driven component pre-staging (see
        :class:`repro.core.prestage.PrestagingService`)."""
        if self.prestaging is None:
            from repro.core.prestage import PrestagingService
            self.prestaging = PrestagingService(self, probability_threshold)
        return self.prestaging

    def enable_migration_scheduler(self, limit: int = 4
                                   ) -> MigrationScheduler:
        """Install the concurrent-migration admission scheduler (see
        :class:`MigrationScheduler`); idempotent, keeps the first limit."""
        if self.scheduler is None:
            self.scheduler = MigrationScheduler(self, limit)
        return self.scheduler

    # -- sensing -----------------------------------------------------------------

    def enable_location_sensing(self, sample_period_ms: float = 200.0,
                                noise_sigma_m: float = 0.3,
                                seed: int = 0) -> CricketSensorNetwork:
        """Start the Cricket sensor network (beacons added per space)."""
        if self.sensors is None:
            self.sensors = CricketSensorNetwork(
                self.loop, self.bus, self.world,
                sample_period_ms=sample_period_ms,
                noise_sigma_m=noise_sigma_m, seed=seed)
            self.sensors.start()
        return self.sensors

    def add_beacon(self, space: str, x: float = 2.0, y: float = 2.0,
                   beacon_id: str = "") -> None:
        if self.sensors is None:
            raise MiddlewareError("call enable_location_sensing() first")
        self.sensors.add_beacon(beacon_id or f"beacon-{space}", space, x, y)

    def add_user(self, user_id: str, badge_id: str, space: str,
                 x: float = 1.0, y: float = 1.0) -> None:
        self.world.add_user(user_id, badge_id, space, x, y)
        self.identities.register(badge_id, user_id)

    def move_user(self, badge_id: str, space: str, x: float = 1.0,
                  y: float = 1.0) -> None:
        self.world.move_user(badge_id, space, x, y)

    def announce_location(self, user_id: str, location: str,
                          previous: Optional[str] = None) -> None:
        """Inject a fused location event directly (no sensors needed)."""
        self.bus.publish(ContextEvent(
            topic=TOPIC_LOCATION, subject=user_id,
            attributes={"location": location, "previous": previous},
            timestamp=self.loop.now, source="manual"))

    def announce_command(self, user_id: str, action: str, app_name: str,
                         destination: str) -> None:
        """Inject an explicit user command -- the paper's "user's
        indication to move an application to a remote host (cut-paste kind
        or copy paste kind)".  ``action`` is ``"move"`` or ``"clone"``."""
        if action not in ("move", "clone"):
            raise MiddlewareError(f"unknown command action {action!r}")
        self.bus.publish(ContextEvent(
            topic=TOPIC_USER_COMMAND, subject=user_id,
            attributes={"action": action, "app_name": app_name,
                        "destination": destination},
            timestamp=self.loop.now, source="user"))

    # -- queries ---------------------------------------------------------------------

    def middleware(self, host_name: str) -> MDAgentMiddleware:
        try:
            return self.middlewares[host_name]
        except KeyError:
            raise MiddlewareError(
                f"no middleware on host {host_name!r}") from None

    def device_profile_of(self, host_name: str) -> Optional[DeviceProfile]:
        return self.device_profiles.get(host_name)

    def application_instances(self, app_name: Optional[str] = None
                              ) -> List[Tuple[str, Application]]:
        """Every installed application instance as ``(host, app)`` pairs.

        A follow-me application should appear exactly once in RUNNING
        state; conservation checkers (:mod:`repro.simcheck`) use this to
        detect instances duplicated or lost across a migration.
        """
        pairs: List[Tuple[str, Application]] = []
        for host_name, middleware in self.middlewares.items():
            for name, app in middleware.applications.items():
                if app_name is None or name == app_name:
                    pairs.append((host_name, app))
        return pairs

    def find_host_in_space(self, space: str, requirements: Dict[str, Any],
                           exclude: Optional[str] = None) -> Optional[str]:
        """First middleware host in ``space`` whose device satisfies the
        requirements (deterministic order)."""
        try:
            space_obj = self.topology.space(space)
        except Exception:
            return None
        for host_name in space_obj.host_names:
            if host_name == exclude or host_name not in self.middlewares:
                continue
            profile = self.device_profiles[host_name]
            if profile.satisfies(requirements):
                return host_name
        return None

    def new_outcome_token(self, app_name: str) -> str:
        return f"{app_name}#{next(self._outcome_seq)}"

    # -- statistics ---------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters across every layer (for dashboards/tests)."""
        outcomes = list(self.outcomes.values())
        completed = [o for o in outcomes if o.completed]
        failed = [o for o in outcomes if o.failed]
        stats = {
            "sim_time_ms": self.loop.now,
            "events_processed": self.loop.processed,
            "hosts": len(self.middlewares),
            "spaces": len(self.topology.spaces),
            "applications": sum(len(m.applications)
                                for m in self.middlewares.values()),
            "agents": len(self.platform.agents),
            "acl_messages_sent": self.platform.messages_sent,
            "acl_messages_failed": self.platform.messages_failed,
            "agent_moves_completed": self.platform.mobility.moves_completed,
            "agent_clones_completed": self.platform.mobility.clones_completed,
            "agent_transfers_dropped": self.platform.mobility.transfers_dropped,
            "agent_transfer_retries": self.platform.mobility.transfer_retries,
            "agent_transfers_resumed": self.platform.mobility.transfers_resumed,
            "agent_checkin_dedup_hits": self.platform.mobility.dedup_hits,
            "df_leases_expired": self.platform.df.leases_expired,
            "faults_fired": (self.chaos.faults_fired
                             if self.chaos is not None else 0),
            "faults_reverted": (self.chaos.faults_reverted
                                if self.chaos is not None else 0),
            "migrations_total": len(outcomes),
            "migrations_completed": len(completed),
            "migrations_failed": len(failed),
            "bytes_migrated": sum(o.bytes_transferred for o in completed),
            "context_events_published": self.bus.published,
            "context_events_stored": self.store.total_stored,
            "registry_lookups": (
                self.federation.total_lookups()
                if self.federation is not None
                else self.registry_server.center.lookups
                if self.registry_server else 0),
            "network_messages_dropped": self.network.messages_dropped,
        }
        if self.federation is not None:
            stats.update(self.federation.stats())
        return stats

    # -- running ----------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        self._arm_chaos("first-run")
        return self.loop.run(until=until)

    def run_all(self, max_events: int = 1_000_000) -> int:
        self._arm_chaos("first-run")
        return self.loop.run_until_idle(max_events=max_events)
