"""The coordinator: observer-pattern state hub + synchronization links.

"The coordinator establishes the synchronization link between different
presentations ... different presentations register themselves to the
coordinator.  When the states change, these presentations can get notified
automatically." (paper §4.2.1.)

Locally the coordinator is a classic Observer-pattern subject over a shared
state dict.  For clone-dispatch mobility it additionally maintains *sync
links*: a MASTER coordinator multicasts each state change to its replicas over
the network; a REPLICA applies remote updates and may forward local control
actions back to the master (which then rebroadcasts).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.core.components import PresentationComponent
from repro.core.errors import ApplicationError

#: Callback the middleware injects to ship a sync update to a peer host:
#: ``(peer_host, app_name, key, value, origin_host) -> None``.
SyncSender = Callable[[str, str, str, Any, str], None]


class SyncRole(enum.Enum):
    NONE = "none"
    MASTER = "master"
    REPLICA = "replica"


class Coordinator:
    """Per-application state subject with optional cross-host sync."""

    def __init__(self, app_name: str, host: str = ""):
        self.app_name = app_name
        self.host = host
        self.state: Dict[str, Any] = {}
        self._observers: List[PresentationComponent] = []
        self.suspended = False
        # Synchronization link bookkeeping.
        self.sync_role = SyncRole.NONE
        self.master_host: Optional[str] = None
        self.replica_hosts: List[str] = []
        self._sync_sender: Optional[SyncSender] = None
        self.updates_applied = 0
        self.updates_sent = 0

    # -- observer pattern ---------------------------------------------------

    def register_observer(self, presentation: PresentationComponent) -> None:
        if presentation in self._observers:
            raise ApplicationError(
                f"presentation {presentation.name!r} already registered")
        self._observers.append(presentation)

    def unregister_observer(self, presentation: PresentationComponent) -> None:
        if presentation in self._observers:
            self._observers.remove(presentation)

    @property
    def observers(self) -> List[PresentationComponent]:
        return list(self._observers)

    def _notify(self, key: str, value: Any) -> None:
        for presentation in self._observers:
            presentation.notify(key, value)

    # -- state updates --------------------------------------------------------

    def update(self, key: str, value: Any) -> None:
        """Apply a local state change and propagate it.

        On a replica, local updates are *control actions*: they are sent to
        the master, which applies them and rebroadcasts to every replica
        (including this one) -- keeping all copies convergent.
        """
        if self.suspended:
            raise ApplicationError(
                f"application {self.app_name!r} is suspended")
        if self.sync_role is SyncRole.REPLICA and self.master_host:
            self._send(self.master_host, key, value)
            return
        self._apply(key, value)
        self._broadcast(key, value)

    def apply_remote_update(self, key: str, value: Any,
                            origin_host: str) -> None:
        """Apply an update arriving over a sync link."""
        if self.suspended:
            return  # a suspended copy silently drops sync traffic
        self._apply(key, value)
        if self.sync_role is SyncRole.MASTER:
            # Rebroadcast a replica's control action to every replica --
            # including the origin, which did not apply it locally and is
            # waiting for the authoritative echo.
            self._broadcast(key, value)

    def _apply(self, key: str, value: Any) -> None:
        self.state[key] = value
        self.updates_applied += 1
        self._notify(key, value)

    def _broadcast(self, key: str, value: Any) -> None:
        if self.sync_role is not SyncRole.MASTER:
            return
        for peer in self.replica_hosts:
            self._send(peer, key, value)

    def _send(self, peer_host: str, key: str, value: Any) -> None:
        if self._sync_sender is None:
            raise ApplicationError(
                f"coordinator of {self.app_name!r} has no sync transport")
        self.updates_sent += 1
        self._sync_sender(peer_host, self.app_name, key, value, self.host)

    # -- sync link management --------------------------------------------------

    def attach_sync_transport(self, sender: SyncSender) -> None:
        self._sync_sender = sender

    def become_master(self) -> None:
        self.sync_role = SyncRole.MASTER
        self.master_host = None

    def add_replica(self, host: str) -> None:
        if self.sync_role is not SyncRole.MASTER:
            raise ApplicationError("only a master coordinator adds replicas")
        if host not in self.replica_hosts:
            self.replica_hosts.append(host)

    def remove_replica(self, host: str) -> None:
        if host in self.replica_hosts:
            self.replica_hosts.remove(host)

    def become_replica(self, master_host: str) -> None:
        self.sync_role = SyncRole.REPLICA
        self.master_host = master_host
        self.replica_hosts = []

    # -- lifecycle ---------------------------------------------------------------

    def suspend(self) -> None:
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def snapshot_state(self) -> Dict[str, Any]:
        return dict(self.state)

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.state = dict(state)
        for key, value in self.state.items():
            self._notify(key, value)
