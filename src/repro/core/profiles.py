"""Descriptor profiles: users, devices, resources (paper Fig. 3).

The application's upper level carries "some description files, such as user
profiles, device profiles, resource profiles and interface descriptions".
Profiles are plain-data and serializable so they ride along with migrating
components and feed the adaptor and the autonomous agents' decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class UserProfile:
    """Who the user is and how they like their applications.

    The paper's §1 motivating example: "if one person is left-handed, he
    will certainly feel uneasy to work in right-handed application
    environments" -- hence ``handedness`` is first-class.
    """

    user_id: str
    handedness: str = "right"
    preferences: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.handedness not in ("left", "right"):
            raise ValueError(f"handedness must be left/right: {self.handedness!r}")

    def preference(self, key: str, default: Any = None) -> Any:
        return self.preferences.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        return {"user_id": self.user_id, "handedness": self.handedness,
                "preferences": dict(self.preferences)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UserProfile":
        return cls(data["user_id"], data.get("handedness", "right"),
                   dict(data.get("preferences", {})))


@dataclass
class DeviceProfile:
    """Capabilities of a host: "different devices usually have different
    properties, such as screen size, resolution ratio, and computation
    capability" (paper §1)."""

    host: str
    screen_width: int = 1024
    screen_height: int = 768
    resolution_dpi: int = 96
    audio_output: bool = True
    input_methods: List[str] = field(default_factory=lambda: ["keyboard", "mouse"])
    is_handheld: bool = False
    #: Relative CPU speed; >1 means slower (matches Host.cpu_factor).
    cpu_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.screen_width <= 0 or self.screen_height <= 0:
            raise ValueError("screen dimensions must be positive")

    def satisfies(self, requirements: Dict[str, Any]) -> bool:
        """Check an application's device requirements against this device.

        Supported requirement keys: ``audio_output`` (bool),
        ``min_screen_width`` / ``min_screen_height`` (int),
        ``input_method`` (must be available), ``allow_handheld`` (False
        rejects handhelds).
        """
        if requirements.get("audio_output") and not self.audio_output:
            return False
        if self.screen_width < requirements.get("min_screen_width", 0):
            return False
        if self.screen_height < requirements.get("min_screen_height", 0):
            return False
        needed_input = requirements.get("input_method")
        if needed_input is not None and needed_input not in self.input_methods:
            return False
        if self.is_handheld and not requirements.get("allow_handheld", True):
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "screen_width": self.screen_width,
            "screen_height": self.screen_height,
            "resolution_dpi": self.resolution_dpi,
            "audio_output": self.audio_output,
            "input_methods": list(self.input_methods),
            "is_handheld": self.is_handheld,
            "cpu_factor": self.cpu_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceProfile":
        return cls(
            data["host"],
            data.get("screen_width", 1024),
            data.get("screen_height", 768),
            data.get("resolution_dpi", 96),
            data.get("audio_output", True),
            list(data.get("input_methods", ["keyboard", "mouse"])),
            data.get("is_handheld", False),
            data.get("cpu_factor", 1.0),
        )


#: Canonical handheld profile used by the handheld demo applications.
def handheld_profile(host: str) -> DeviceProfile:
    return DeviceProfile(host, screen_width=320, screen_height=240,
                         resolution_dpi=120, audio_output=True,
                         input_methods=["touch"], is_handheld=True,
                         cpu_factor=4.0)


@dataclass
class ResourceProfile:
    """Resources an application needs, by ontology class, plus the concrete
    bindings it currently holds."""

    required_classes: List[str] = field(default_factory=list)
    bound_resources: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"required_classes": list(self.required_classes),
                "bound_resources": dict(self.bound_resources)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceProfile":
        return cls(list(data.get("required_classes", ())),
                   dict(data.get("bound_resources", {})))
