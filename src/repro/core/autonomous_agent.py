"""Autonomous agents: context-driven, rule-based migration decisions.

"Autonomous agent is responsible for reasoning and decision-making according
to the data received from context layer" (paper §4.1).  The
:class:`DecisionEngine` turns the situation (destination candidate, network
response time, device compatibility, destination inventory) into ontology
facts, runs the Fig. 6-style rule set through the forward chainer, and reads
the derived ``move`` action back out -- so every migration command is
explainable by a rule derivation.

:class:`MDAutonomousAgent` is the resident agent per middleware host: it
consumes context events (location changes, explicit user commands), asks the
registry about candidate destinations, consults the decision engine and then
REQUESTs the mobile agent manager to execute (the Fig. 4 sequence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.core.binding import BindingPolicy, MigrationKind
from repro.core.rulesets import default_migration_rules
from repro.ontology.reasoner import Derivation, ForwardChainingReasoner
from repro.ontology.rules import RuleSet
from repro.ontology.triples import Graph, Literal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import MDAgentMiddleware


@dataclass
class Decision:
    """Outcome of one rule evaluation."""

    move: bool
    source: str
    destination: str
    #: "delta" (destination has components; wrap states only) or "full"
    #: (carry logic + UI as well) -- the adaptive-binding choice of §5.
    carry_policy: str = "delta"
    derivation: Optional[Derivation] = None
    facts: int = 0

    def __bool__(self) -> bool:
        return self.move


class DecisionEngine:
    """Evaluates the migration rules over situation facts."""

    def __init__(self, rules: Optional[RuleSet] = None,
                 response_time_threshold_ms: float = 1000.0):
        self.rules = rules if rules is not None else \
            default_migration_rules(response_time_threshold_ms)
        self.evaluations = 0

    def evaluate(self, source: str, destination: str,
                 response_time_ms: float, device_compatible: bool,
                 destination_has_components: bool,
                 compatible_resources: Tuple[Tuple[str, str], ...] = ()
                 ) -> Decision:
        """Build the fact base, forward-chain, and read the action off."""
        self.evaluations += 1
        graph = Graph()
        graph.assert_("imcl:src", "imcl:address", Literal(source))
        graph.assert_("imcl:dest", "imcl:address", Literal(destination))
        graph.assert_("imcl:link", "imcl:responseTime",
                      Literal(float(response_time_ms), "xsd:double"))
        graph.assert_("imcl:dest", "imcl:deviceCompatible",
                      Literal(bool(device_compatible), "xsd:boolean"))
        graph.assert_("imcl:dest", "imcl:hasComponents",
                      Literal(bool(destination_has_components), "xsd:boolean"))
        for src_resource, dest_resource in compatible_resources:
            graph.assert_(src_resource, "imcl:compatible", dest_resource)
        reasoner = ForwardChainingReasoner(self.rules, schema=False)
        inferred = reasoner.run(graph)
        move_actions = [
            t for t in inferred.match(None, "imcl:actName", Literal("move"))
        ]
        decision = Decision(move=bool(move_actions), source=source,
                            destination=destination, facts=len(graph))
        if move_actions:
            decision.derivation = reasoner.explain(move_actions[0])
        carry = inferred.value("imcl:dest", "imcl:carryPolicy")
        if carry == Literal("full") or (isinstance(carry, Literal)
                                        and carry.value == "full"):
            decision.carry_policy = "full"
        return decision


class MDAutonomousAgent(Agent):
    """The per-host autonomous agent.

    Wakes on context events delivered as INFORM messages with dict content
    ``{"topic": "context.location", "subject": user, "location": ...,
    "previous": ...}`` (the middleware bridges the context bus to ACL).  For
    every hosted application owned by the moving user and marked
    ``follow_user``, it plans and requests a migration.
    """

    def __init__(self, local_name: str):
        super().__init__(local_name)
        self.middleware: Optional["MDAgentMiddleware"] = None
        self.engine = DecisionEngine()
        self.decisions: List[Decision] = []
        self.migrations_requested = 0

    def attach(self, middleware: "MDAgentMiddleware") -> None:
        self.middleware = middleware
        self.engine = DecisionEngine(
            response_time_threshold_ms=middleware.config
            .response_time_threshold_ms)

    def setup(self) -> None:
        agent = self

        class ContextPump(CyclicBehaviour):
            def action(self):
                message = agent.receive(performative=Performative.INFORM)
                if message is None:
                    self.block()
                    return
                content = message.content
                if not isinstance(content, dict):
                    return
                topic = content.get("topic")
                if topic == "context.location":
                    agent._on_location_change(content)
                elif topic == "context.command":
                    agent._on_user_command(content)

        self.add_behaviour(ContextPump(name="context-pump"))

    # -- decision flow ---------------------------------------------------------

    def _on_location_change(self, event: Dict) -> None:
        middleware = self.middleware
        if middleware is None:
            return
        user = event.get("subject")
        new_space = event.get("location")
        if not user or not new_space:
            return
        if middleware.deployment.topology.space_of(middleware.host_name) \
                == new_space:
            return  # the user arrived where the apps already are
        for app in list(middleware.applications.values()):
            if app.owner != user:
                continue
            if not app.user_profile.preference("follow_user", True):
                continue
            if app.status.value != "running":
                continue
            self._consider_migration(app, new_space)

    def _on_user_command(self, event: Dict) -> None:
        """An explicit user indication: move/clone an app to a named host.

        The destination is given, but the AA still verifies device
        compatibility and network condition through the rule engine before
        commanding the mobile agent manager.
        """
        middleware = self.middleware
        if middleware is None:
            return
        app = middleware.applications.get(event.get("app_name") or "")
        if app is None or app.owner != event.get("subject"):
            return
        if app.status.value != "running":
            return
        destination = event.get("destination")
        if not destination or destination == middleware.host_name:
            return
        kind = (MigrationKind.CLONE_DISPATCH
                if event.get("action") == "clone"
                else MigrationKind.FOLLOW_ME)
        self._query_destination(app, destination, kind=kind)

    def _consider_migration(self, app, new_space: str) -> None:
        middleware = self.middleware
        if middleware.config.destination_strategy == "contract-net":
            self._solicit_bids(app, new_space)
            return
        destination = middleware.deployment.find_host_in_space(
            new_space, app.device_requirements,
            exclude=middleware.host_name)
        if destination is None:
            return
        self._query_destination(app, destination)

    def _solicit_bids(self, app, new_space: str) -> None:
        """Contract net: CFP every candidate host's MA manager; the
        least-loaded (then fastest) bidder wins."""
        middleware = self.middleware
        deployment = middleware.deployment
        try:
            space = deployment.topology.space(new_space)
        except Exception:
            return
        contractors = [
            f"mam-{h}@{h}" for h in space.host_names
            if h != middleware.host_name and h in deployment.middlewares
        ]
        if not contractors:
            return

        def select(proposals):
            ranked = sorted(
                proposals.items(),
                key=lambda kv: (kv[1]["running_apps"],
                                kv[1]["cpu_factor"], kv[1]["host"]))
            return ranked[0][0]

        def on_award(winner_aid, proposal):
            if proposal is not None:
                self._query_destination(app, proposal["host"])

        from repro.agents.protocols import ContractNetInitiator
        self.add_behaviour(ContractNetInitiator(
            contractors, {"app_name": app.name,
                          "requirements": app.device_requirements},
            "md-hosting", select, on_award,
            name=f"cfp-{app.name}"))

    def _query_destination(self, app, destination: str,
                           kind: MigrationKind = MigrationKind.FOLLOW_ME
                           ) -> None:
        # Ask the registry what the destination already has, then decide.
        self.middleware.registry_client.call(
            "components_at",
            {"app_name": app.name, "host": destination},
            lambda components, error: self._decide(
                app, destination, components or [], error, kind))

    def _decide(self, app, destination: str, dest_components: List[str],
                error: Optional[str],
                kind: MigrationKind = MigrationKind.FOLLOW_ME) -> None:
        middleware = self.middleware
        if error is not None:
            return
        response_time = middleware.measured_response_time(destination)
        device = middleware.deployment.device_profile_of(destination)
        device_ok = device is not None and \
            device.satisfies(app.device_requirements)
        decision = self.engine.evaluate(
            source=middleware.host_name,
            destination=destination,
            response_time_ms=response_time,
            device_compatible=device_ok,
            destination_has_components=bool(dest_components),
        )
        self.decisions.append(decision)
        if not decision.move:
            return
        self.migrations_requested += 1
        # Fig. 4: the AA notifies the MA manager with a migration request.
        request = ACLMessage(
            Performative.REQUEST,
            receivers=[middleware.ma_manager_aid],
            content={
                "action": "migrate",
                "app_name": app.name,
                "destination": destination,
                "kind": kind.value,
                "policy": BindingPolicy.ADAPTIVE.value,
                "carry_policy": decision.carry_policy,
            },
            protocol="md-migration",
        ).with_reply_id()
        self.send(request)


class MDMobileAgentManager(Agent):
    """The mobile agent manager: turns AA requests into executed plans.

    "The autonomous agent will decide whether and what parts of application
    will be shipped to the new environments through a message to the mobile
    agent manager" (§4.3).
    """

    def __init__(self, local_name: str):
        super().__init__(local_name)
        self.middleware: Optional["MDAgentMiddleware"] = None
        self.requests_handled = 0
        self._capability_responder = None

    def attach(self, middleware: "MDAgentMiddleware") -> None:
        self.middleware = middleware

    def enable_capability_responder(self) -> None:
        """Serve FIPA capability proposals (propose/accept/reject) -- the
        destination side of the interop migration protocol."""
        if self._capability_responder is not None:
            return
        from repro.agents.protocols import ProposeResponder
        from repro.core.pipeline import CAPABILITY_PROTOCOL
        self._capability_responder = ProposeResponder(
            CAPABILITY_PROTOCOL, self._consider_proposal,
            name="capability-negotiation")
        self.add_behaviour(self._capability_responder)

    def _consider_proposal(self, message: ACLMessage):
        middleware = self.middleware
        if middleware is None or not isinstance(message.content, dict):
            return False, {"reason": "malformed proposal"}
        return middleware.evaluate_migration_proposal(message.content)

    def setup(self) -> None:
        agent = self

        class RequestPump(CyclicBehaviour):
            def action(self):
                message = agent.receive(performative=Performative.REQUEST,
                                        protocol="md-migration")
                if message is None:
                    self.block()
                    return
                agent._handle(message)

        self.add_behaviour(RequestPump(name="migration-requests"))
        # Contract-net contractor: bid to host incoming applications.
        from repro.agents.protocols import ContractNetResponder
        self.add_behaviour(ContractNetResponder(
            "md-hosting", self._bid, name="hosting-bids"))

    def _bid(self, cfp):
        """Bid on a hosting CFP: refuse if this device does not satisfy the
        app's requirements, otherwise report load + speed."""
        middleware = self.middleware
        if middleware is None or not isinstance(cfp, dict):
            return None
        requirements = cfp.get("requirements", {})
        if not middleware.device_profile.satisfies(requirements):
            return None
        running = sum(1 for a in middleware.applications.values()
                      if a.status.value == "running")
        return {
            "host": middleware.host_name,
            "running_apps": running,
            "cpu_factor": middleware.device_profile.cpu_factor,
        }

    def _handle(self, message: ACLMessage) -> None:
        middleware = self.middleware
        content = message.content
        if not isinstance(content, dict) or content.get("action") != "migrate":
            self.send(message.create_reply(Performative.REFUSE,
                                           content="unsupported request"))
            return
        self.requests_handled += 1
        try:
            middleware.migrate(
                content["app_name"], content["destination"],
                kind=MigrationKind(content.get("kind", "follow-me")),
                policy=BindingPolicy(content.get("policy", "adaptive")))
        except Exception as exc:
            self.send(message.create_reply(Performative.FAILURE,
                                           content=str(exc)))
            return
        self.send(message.create_reply(Performative.AGREE,
                                       content="migration started"))
