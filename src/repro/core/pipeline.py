"""Explicit middleware pipeline: ordered phases with declared contracts.

ROADMAP item 4 calls for restructuring the monolithic middleware as an
explicit middleware stack so heterogeneous platforms can exchange agents.
This module is that stack: admission, planning, capability negotiation,
suspend, state capture, transfer, check-in, binding re-establishment and
power-up are separate :class:`MiddlewarePhase` objects with declared
``requires``/``provides`` contracts over a shared
:class:`MigrationContext`, and :func:`validate_middleware_stack` rejects
mis-ordered or incomplete stacks when the pipeline is *built* -- at
deployment construction time, not when the first migration runs.

The default ("direct") stack reproduces the classic monolithic behaviour
event-for-event: phase hand-offs reuse the exact timer callbacks the
monolith scheduled (``MobilityManager._wrap_and_send`` and friends are
now thin continuations), so kernel traces -- and therefore the pinned
bench and golden digests -- stay byte-identical.

The "fipa" stack inserts a pre-transfer ``propose/accept/reject``
capability negotiation over ACL (platform kind, serialization version,
resource classes), modelled on the FIPA interoperable-mobility proposal:
an incompatible destination rejects the proposal *before* the source
application is suspended, so a platform mismatch degrades to a clean
failed :class:`MigrationOutcome` with the source app still running.

Failure handling is uniform: when any phase fails, the context rolls the
migration back through every phase already passed (newest first), each
phase undoing only what it did -- resume a suspended source, delete an
arrived mobile agent, uninstall a half-installed destination copy,
restore and restart the source instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.application import Application, AppStatus
from repro.core.binding import BindingPolicy, MigrationKind, MigrationPlan
from repro.core.errors import MigrationError, PipelineError
from repro.core.metrics import MigrationOutcome
from repro.core.mobile_agent import MDMobileAgent
from repro.core.mobility import end_outcome_spans, plan_from_dict, plan_to_dict

#: ACL protocol of the FIPA capability-negotiation exchange.
CAPABILITY_PROTOCOL = "md-capability"


# -- contracts --------------------------------------------------------------


@dataclass(frozen=True)
class MiddlewareContract:
    """What one phase consumes and produces on the migration context.

    ``site`` declares which middleware runs the phase: ``"source"``
    phases execute where the application currently lives, and
    ``"destination"`` phases execute after the mobile agent's hand-off.
    """

    requires: FrozenSet[str] = frozenset()
    provides: FrozenSet[str] = frozenset()
    site: str = "source"

    def __post_init__(self) -> None:
        object.__setattr__(self, "requires", frozenset(self.requires))
        object.__setattr__(self, "provides", frozenset(self.provides))
        if self.site not in ("source", "destination"):
            raise PipelineError(f"unknown contract site {self.site!r}")


class MiddlewarePhase:
    """One named concern in a migration pipeline.

    Subclasses set :attr:`name`, :attr:`contract` and implement
    :meth:`run`.  A phase either calls ``ctx.complete_phase()`` before
    returning (synchronous completion) or schedules work that calls it
    later; exceptions raised from :meth:`run` fail the migration through
    ``ctx.fail`` with :meth:`describe_error`'s rendering.
    """

    name: str = "phase"
    contract: MiddlewareContract = MiddlewareContract()
    #: The hand-off phase: the last source-site phase, whose completion
    #: is signalled by the mobile agent's arrival at the destination.
    handoff: bool = False

    def run(self, ctx: "MigrationContext") -> None:
        raise NotImplementedError

    def rollback(self, ctx: "MigrationContext") -> None:
        """Undo this phase's effects after a later (or own) failure."""

    def describe_error(self, ctx: "MigrationContext",
                       exc: BaseException) -> str:
        return str(exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class ValidationResult:
    """Outcome of :func:`validate_middleware_stack`."""

    ok: bool
    errors: List[str] = field(default_factory=list)
    provided: FrozenSet[str] = frozenset()

    def __bool__(self) -> bool:
        return self.ok


def validate_middleware_stack(
        phases: Sequence[MiddlewarePhase],
        initial_keys: Iterable[str] = ("request",),
        required_final: Iterable[str] = ("resumed",)) -> ValidationResult:
    """Statically check a stack's ordering and completeness.

    Rejects: empty stacks, duplicate phase names, a phase whose
    ``requires`` is not covered by the initial keys plus every earlier
    phase's ``provides`` (the mis-ordering case), re-provided keys, a
    source-site phase after a destination-site one, anything but exactly
    one hand-off phase (which must be the last source-site phase), and a
    stack whose final key set misses ``required_final``.
    """
    errors: List[str] = []
    available = set(initial_keys)
    if not phases:
        errors.append("middleware stack is empty")
    seen_names: set = set()
    seen_destination = False
    handoffs = [p for p in phases if p.handoff]
    for index, phase in enumerate(phases):
        if phase.name in seen_names:
            errors.append(f"duplicate phase name {phase.name!r}")
        seen_names.add(phase.name)
        contract = phase.contract
        missing = sorted(contract.requires - available)
        if missing:
            errors.append(
                f"phase {phase.name!r} (position {index}) requires "
                f"{missing} but no earlier phase provides them "
                f"(available: {sorted(available)})")
        re_provided = sorted(contract.provides & available)
        if re_provided:
            errors.append(f"phase {phase.name!r} re-provides {re_provided}")
        if contract.site == "destination":
            seen_destination = True
        elif seen_destination:
            errors.append(
                f"source-site phase {phase.name!r} appears after a "
                f"destination-site phase")
        if phase.handoff and contract.site != "source":
            errors.append(f"hand-off phase {phase.name!r} must be "
                          f"source-site")
        available |= contract.provides
    if len(handoffs) != 1:
        errors.append(f"stack needs exactly one hand-off phase, found "
                      f"{len(handoffs)}")
    else:
        handoff_index = phases.index(handoffs[0])
        for later in phases[handoff_index + 1:]:
            if later.contract.site != "destination":
                errors.append(
                    f"phase {later.name!r} after the hand-off must be "
                    f"destination-site")
        for earlier in phases[:handoff_index]:
            if earlier.contract.site != "source":
                errors.append(
                    f"destination-site phase {earlier.name!r} appears "
                    f"before the hand-off")
    missing_final = sorted(set(required_final) - available)
    if missing_final:
        errors.append(f"stack never provides {missing_final} -- incomplete "
                      f"pipeline")
    return ValidationResult(ok=not errors, errors=errors,
                            provided=frozenset(available))


# -- context ----------------------------------------------------------------


@dataclass
class MigrationRequest:
    """What the caller asked for (the pipeline's initial context key)."""

    app_name: str
    destination: str
    kind: MigrationKind = MigrationKind.FOLLOW_ME
    policy: BindingPolicy = BindingPolicy.ADAPTIVE
    prestage: bool = False


class MigrationContext:
    """Typed, shared state one migration carries through its pipeline.

    The contract keys (``request``, ``app``, ``outcome``, ``plan``,
    ``grant``, ``suspended``, ``snapshot``, ``agent``, ``arrival``,
    ``bindings``, ``resumed``) name milestones; the concrete data lives
    in the attributes below.
    """

    def __init__(self, pipeline: "MigrationPipeline",
                 middleware, request: Optional[MigrationRequest],
                 failpoints: Iterable[str] = ()):
        self.pipeline = pipeline
        #: Source middleware (None for a destination-only arrival replay).
        self.middleware = middleware
        self.request = request
        self.app: Optional[Application] = None
        self.outcome: Optional[MigrationOutcome] = None
        self.token: str = ""
        self.plan: Optional[MigrationPlan] = None
        self.grant: Optional[Dict[str, Any]] = None
        self.snapshot = None
        self.ma: Optional[MDMobileAgent] = None
        self.ma_arrived = False
        #: Destination middleware, set at mobile-agent arrival.
        self.destination_middleware = None
        #: The plan as unwrapped from the agent's cargo at the destination.
        self.arrived_plan: Optional[MigrationPlan] = None
        self.dest_app: Optional[Application] = None
        self.dest_installed = False
        self.snapshot_data: Optional[Dict[str, Any]] = None
        #: Keys provided so far (contract milestones, for introspection).
        self.keys: set = set(pipeline.initial_keys)
        #: Test seam: phase names after which a failure is injected.
        self.failpoints = frozenset(failpoints)
        self.finished = False
        self._suspended_here = False
        self._transfer_started = False
        self._index = 0
        self._entered: Optional[MiddlewarePhase] = None
        self._completed: List[MiddlewarePhase] = []
        self._in_run = False

    # -- plumbing ----------------------------------------------------------

    @property
    def any_middleware(self):
        return self.middleware if self.middleware is not None \
            else self.destination_middleware

    @property
    def loop(self):
        return self.any_middleware.loop

    @property
    def observability(self):
        return self.loop.observability

    def phase_names(self) -> List[str]:
        return [p.name for p in self.pipeline.phases]

    # -- progression -------------------------------------------------------

    def complete_phase(self) -> None:
        """Mark the current phase done and advance the pipeline."""
        if self.finished:
            return
        phase = self.pipeline.phases[self._index]
        self._completed.append(phase)
        self.keys |= phase.contract.provides
        self._index += 1
        if self._index >= len(self.pipeline.phases):
            self.finished = True
            return
        if phase.name in self.failpoints:
            self.fail(f"injected failure after phase {phase.name!r}")
            return
        if not self._in_run:
            self.pipeline._advance(self)

    def finish_early(self) -> None:
        """End the pipeline cleanly before the last phase (e.g. a prestage
        plan with nothing to ship)."""
        self.finished = True

    def arrive(self, destination_middleware, ma: MDMobileAgent) -> None:
        """The mobile agent checked in: complete the hand-off phase and
        continue with the destination-site phases."""
        self.destination_middleware = destination_middleware
        self.ma = ma
        self.ma_arrived = True
        self.arrived_plan = plan_from_dict(ma.plan)
        self.complete_phase()

    def fail(self, reason: str,
             before_finish: Optional[Callable[[], None]] = None) -> None:
        """Fail the migration: record the reason, roll back every phase
        passed so far (newest first), then finish the outcome.

        ``before_finish`` runs after the rollback chain but before the
        outcome's completion callbacks fire -- the transfer phase uses it
        to keep the classic failure-counter ordering.
        """
        if self.finished:
            return
        outcome = self.outcome
        if outcome is not None and (outcome.completed or outcome.failed):
            self.finished = True
            return
        self.finished = True
        if outcome is not None:
            outcome.failed = True
            outcome.failure_reason = reason
        chain: List[MiddlewarePhase] = []
        if self._entered is not None and \
                self._entered not in self._completed:
            chain.append(self._entered)
        chain.extend(reversed(self._completed))
        for phase in chain:
            try:
                phase.rollback(self)
            except Exception:  # pragma: no cover - rollback best-effort
                pass
        if before_finish is not None:
            before_finish()
        if outcome is not None:
            outcome._finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MigrationContext {self.pipeline.name} "
                f"phase={self._index}/{len(self.pipeline.phases)} "
                f"keys={sorted(self.keys)}>")


# -- driver -----------------------------------------------------------------


class MigrationPipeline:
    """An ordered, validated middleware stack plus its trampoline driver.

    ``observe=True`` wraps every phase entry in a ``pipeline.phase`` span
    and counter (used by the FIPA stack); the default stack leaves it off
    so the pinned digests stay untouched.
    """

    def __init__(self, name: str, phases: Sequence[MiddlewarePhase],
                 initial_keys: Iterable[str] = ("request",),
                 required_final: Iterable[str] = ("resumed",),
                 observe: bool = False):
        result = validate_middleware_stack(phases, initial_keys,
                                           required_final)
        if not result.ok:
            raise PipelineError(
                f"invalid middleware stack {name!r}: "
                + "; ".join(result.errors))
        self.name = name
        self.phases: List[MiddlewarePhase] = list(phases)
        self.initial_keys = tuple(initial_keys)
        self.observe = observe
        self._handoff_index = next(
            i for i, p in enumerate(self.phases) if p.handoff)

    def phase(self, name: str) -> MiddlewarePhase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise PipelineError(f"no phase {name!r} in pipeline {self.name!r}")

    def start(self, ctx: MigrationContext) -> MigrationContext:
        self._advance(ctx)
        return ctx

    def _advance(self, ctx: MigrationContext) -> None:
        """Run phases until one completes asynchronously, fails, or the
        stack is exhausted.  Synchronous phases call
        ``ctx.complete_phase()`` inside :meth:`MiddlewarePhase.run`; the
        loop detects the advanced index and continues without any extra
        kernel event."""
        phases = self.phases
        while not ctx.finished and ctx._index < len(phases):
            phase = phases[ctx._index]
            ctx._entered = phase
            before = ctx._index
            ctx._in_run = True
            try:
                self._run_phase(ctx, phase)
            except Exception as exc:
                ctx._in_run = False
                if ctx.outcome is None and ctx.middleware is not None:
                    # Admission-time errors (unknown app/destination...)
                    # surface synchronously to the caller, exactly like
                    # the classic monolithic migrate().
                    raise
                ctx.fail(phase.describe_error(ctx, exc))
                return
            ctx._in_run = False
            if ctx.finished or ctx._index == before:
                # Failed, finished, or waiting for an async completion
                # (timer, network round trip, agent arrival).
                return

    def _run_phase(self, ctx: MigrationContext,
                   phase: MiddlewarePhase) -> None:
        if not self.observe:
            phase.run(ctx)
            return
        obs = ctx.observability
        if obs is None:
            phase.run(ctx)
            return
        if obs.tracer.enabled:
            with obs.tracer.span("pipeline.phase", category="pipeline",
                                 pipeline=self.name, phase=phase.name):
                phase.run(ctx)
        else:
            phase.run(ctx)
        obs.metrics.counter("pipeline.phase", pipeline=self.name,
                            phase=phase.name).inc()

    def arrival_context(self, destination_middleware,
                        ma: MDMobileAgent,
                        outcome: Optional[MigrationOutcome]
                        ) -> MigrationContext:
        """Destination-only context for an agent whose source-side context
        is unavailable (unknown token, cross-deployment arrival): the
        pipeline resumes at the hand-off phase as if the source phases had
        run elsewhere."""
        ctx = MigrationContext(self, None, None)
        ctx.outcome = outcome
        ctx.plan = plan_from_dict(ma.plan)
        ctx._index = self._handoff_index
        ctx._entered = self.phases[self._handoff_index]
        for phase in self.phases[:self._handoff_index]:
            ctx.keys |= phase.contract.provides
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MigrationPipeline {self.name!r} "
                f"{[p.name for p in self.phases]}>")


# -- migration phases -------------------------------------------------------


class AdmissionPhase(MiddlewarePhase):
    """Validate the request, arm chaos, mint the outcome and its token."""

    name = "admission"
    contract = MiddlewareContract(requires=frozenset({"request"}),
                                  provides=frozenset({"app", "outcome"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        request = ctx.request
        app = middleware.application(request.app_name)
        if app.status is not AppStatus.RUNNING:
            raise MigrationError(f"{request.app_name!r} is not running")
        if request.destination == middleware.host_name:
            raise MigrationError("destination equals current host")
        if not middleware.network.has_host(request.destination):
            raise MigrationError(
                f"unknown destination host {request.destination!r}")
        middleware.deployment._arm_chaos("first-migration")
        provisional = MigrationPlan(request.app_name, middleware.host_name,
                                    request.destination, request.kind,
                                    request.policy)
        outcome = MigrationOutcome(provisional)
        token = middleware.deployment.new_outcome_token(request.app_name)
        middleware.deployment.outcomes[token] = outcome
        outcome._pipeline_ctx = ctx  # type: ignore[attr-defined]
        ctx.app = app
        ctx.outcome = outcome
        ctx.token = token
        ctx.complete_phase()


class PlanningPhase(MiddlewarePhase):
    """Registry lookups (destination inventory, resource matches) and the
    binding resolver's plan.  Happens before the measured suspension
    phase begins, matching the paper's measurement window."""

    name = "planning"
    contract = MiddlewareContract(requires=frozenset({"app", "outcome"}),
                                  provides=frozenset({"plan"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        app = ctx.app
        request = ctx.request
        outcome = ctx.outcome

        def with_components(components, error):
            if error is not None:
                ctx.fail(f"registry lookup failed: {error}")
                return
            required = [b.resource_id for b in app.resource_bindings]
            if not required:
                finish_plan(components or [], {})
                return
            middleware.registry_client.call(
                "rebind_map",
                {"required": required, "host": request.destination},
                lambda matches, err2: finish_plan(components or [],
                                                  matches or {})
                if err2 is None else ctx.fail(err2))

        def finish_plan(components: List[str],
                        matches: Dict[str, Optional[str]]):
            plan = middleware.resolver.plan(
                app, middleware.host_name, request.destination,
                destination_components=components,
                resource_matches=matches, kind=request.kind,
                policy=request.policy)
            plan.token = ctx.token  # type: ignore[attr-defined]
            outcome.plan = plan
            outcome.log(f"plan: {plan.summary()}")
            ctx.plan = plan
            ctx.complete_phase()

        middleware.registry_client.call(
            "components_at",
            {"app_name": request.app_name, "host": request.destination},
            with_components)


class DirectNegotiationPhase(MiddlewarePhase):
    """The classic protocol: the destination middleware is assumed
    homogeneous, so the capability grant is implicit and free -- no
    events, no messages, no digest drift."""

    name = "negotiation"
    contract = MiddlewareContract(requires=frozenset({"plan"}),
                                  provides=frozenset({"grant"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        ctx.grant = {"protocol": "direct",
                     "platform_kind": middleware.platform_kind,
                     "serialization_version":
                         middleware.serialization_version}
        ctx.complete_phase()


class FipaNegotiationPhase(MiddlewarePhase):
    """FIPA-shaped pre-transfer capability negotiation.

    The source's mobile-agent manager PROPOSEs its capability tuple
    (platform kind, serialization version, resource classes, device
    requirements) to the destination's manager over ACL; the destination
    answers ACCEPT-PROPOSAL with its own capabilities (the grant) or
    REJECT-PROPOSAL with a reason.  Rejection and timeout fail the
    migration *before* suspension, leaving the source app running.
    """

    name = "negotiation"
    contract = MiddlewareContract(requires=frozenset({"plan"}),
                                  provides=frozenset({"grant"}))

    def run(self, ctx: MigrationContext) -> None:
        from repro.agents.protocols import ProposeInitiator

        middleware = ctx.middleware
        plan = ctx.plan
        outcome = ctx.outcome
        proposal = middleware.capability_proposal(plan)
        responder_aid = f"mam-{plan.destination}@{plan.destination}"

        def on_accept(message):
            grant = message.content if isinstance(message.content, dict) \
                else {}
            outcome.log(
                f"negotiation: {plan.destination} accepted "
                f"({grant.get('platform_kind', '?')}"
                f"/v{grant.get('serialization_version', '?')})")
            ctx.grant = grant
            ctx.complete_phase()

        def on_reject(message):
            detail = message.content.get("reason", "no reason given") \
                if isinstance(message.content, dict) else str(message.content)
            outcome.log(f"negotiation: {plan.destination} rejected "
                        f"proposal: {detail}")
            ctx.fail(f"migration proposal rejected by "
                     f"{plan.destination}: {detail}")

        def on_timeout():
            ctx.fail(f"capability negotiation with {plan.destination} "
                     f"timed out")

        outcome.log(f"negotiation: proposing "
                    f"{proposal['platform_kind']}"
                    f"/v{proposal['serialization_version']} to "
                    f"{plan.destination}")
        middleware.mam.add_behaviour(ProposeInitiator(
            responder_aid, proposal, CAPABILITY_PROTOCOL,
            on_accept=on_accept, on_reject=on_reject,
            on_timeout=on_timeout,
            timeout_ms=middleware.config.negotiation_timeout_ms,
            name=f"negotiate-{plan.app_name}"))


class SuspendPhase(MiddlewarePhase):
    """Stop the source instance (follow-me) and open the measured
    suspension window: status checks, counters, and the observability
    root span live here."""

    name = "suspend"
    contract = MiddlewareContract(requires=frozenset({"plan", "grant"}),
                                  provides=frozenset({"suspended"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        manager = middleware.mobility_manager
        app = ctx.app
        plan = ctx.plan
        outcome = ctx.outcome
        if app.status is not AppStatus.RUNNING:
            raise MigrationError(
                f"cannot migrate {app.name!r}: status is {app.status}")
        if plan.source != middleware.host_name:
            raise MigrationError(
                f"plan source {plan.source!r} is not this host "
                f"{middleware.host_name!r}")
        manager.migrations_started += 1
        outcome.started_at = manager.loop.now
        obs = manager.loop.observability
        if obs is not None:
            # The phase spans carry exactly the timestamps that feed the
            # outcome's suspend/migrate/resume figures (Fig. 8/9 series):
            # both are written from the same loop.now at the same call
            # sites, so trace and tables agree to the float bit.
            root = obs.tracer.begin_span(
                "app.migration", category="migration", host=middleware.host,
                app=plan.app_name, source=plan.source,
                destination=plan.destination, kind=plan.kind.value,
                policy=plan.policy.value)
            outcome._obs_root = root
            outcome._obs_phase = root.child("suspend", host=middleware.host,
                                            app=plan.app_name)
            outcome.on_complete(
                lambda o: end_outcome_spans(o, failed=o.failed))
        if plan.kind is MigrationKind.FOLLOW_ME:
            app.suspend()
            ctx._suspended_here = True
            outcome.log(f"suspended {app.name} at {manager.loop.now:.1f}")
        ctx.complete_phase()

    def rollback(self, ctx: MigrationContext) -> None:
        # Only undo a suspension this phase performed, and only while the
        # transfer never started -- once the agent is in flight the
        # transfer phase owns the source instance's fate (stop/restore).
        if not ctx._suspended_here or ctx._transfer_started:
            return
        app = ctx.app
        if app is None or app.status is not AppStatus.SUSPENDED:
            return
        app.resume()
        middleware = ctx.middleware
        if middleware is not None:
            middleware.publish_app_event(app, "rolled-back")
        if ctx.outcome is not None:
            ctx.outcome.log(f"rolled back: resumed {app.name} at source "
                            f"{middleware.host_name}")


class CapturePhase(MiddlewarePhase):
    """Snapshot the application and pay the CPU-scaled suspension cost;
    completion continues in ``MobilityManager._wrap_and_send`` (the
    monolith's timer target, kept for trace identity)."""

    name = "capture"
    contract = MiddlewareContract(requires=frozenset({"suspended"}),
                                  provides=frozenset({"snapshot"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        manager = middleware.mobility_manager
        config = manager.config
        app = ctx.app
        plan = ctx.plan
        cpu = middleware.host.cpu_factor
        snapshot = middleware.snapshot_manager.capture(
            app, now=manager.loop.now)
        ctx.snapshot = snapshot
        size_mb = snapshot.size_bytes / 1e6
        if plan.kind is MigrationKind.FOLLOW_ME:
            suspend_cost = (config.suspend_base_ms
                            + config.snapshot_ms_per_mb * size_mb) * cpu
        else:
            suspend_cost = (config.clone_snapshot_base_ms
                            + config.snapshot_ms_per_mb * size_mb) * cpu
        manager.loop.call_later(suspend_cost, manager._wrap_and_send, ctx)


class TransferPhase(MiddlewarePhase):
    """Wrap the app in a mobile agent and ship it: manifest assembly,
    sync-master hand-over, remote-data stubs, check-out.  The phase
    completes when the agent checks in at the destination (the hand-off);
    a transfer failure rolls the source back."""

    name = "transfer"
    contract = MiddlewareContract(requires=frozenset({"snapshot"}),
                                  provides=frozenset({"agent"}))
    handoff = True

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        manager = middleware.mobility_manager
        app = ctx.app
        plan = ctx.plan
        outcome = ctx.outcome
        snapshot = ctx.snapshot
        ctx._transfer_started = True
        outcome.suspend_done_at = manager.loop.now
        root = getattr(outcome, "_obs_root", None)
        if root is not None:
            outcome._obs_phase.end(host=middleware.host)
            outcome._obs_phase = root.child("migrate", host=middleware.host,
                                            app=plan.app_name)
        manifest = app.to_manifest(plan.carry_components)
        # A migrating sync master hands its replica set over: the manifest
        # carries the list so the new host can re-point every replica.
        coordinator = app.coordinator
        if (plan.kind is MigrationKind.FOLLOW_ME
                and coordinator.sync_role.value == "master"
                and coordinator.replica_hosts):
            manifest["sync_master"] = {
                "replicas": list(coordinator.replica_hosts)}
        # Remote-bound data components still appear in the manifest as
        # lightweight stubs (size 0 on the wire) so the destination knows
        # the URL to stream from.
        for name in plan.remote_data:
            if app.has_component(name):
                component = app.component(name)
                stub = component.to_dict()
                stub["size_bytes"] = 0
                stub["__virtual_bytes__"] = 0
                stub["remote_url"] = f"md://{plan.source}/{app.name}/{name}"
                manifest["components"].append(stub)
        # Resource bindings are tiny metadata: they always travel so the
        # destination can re-establish them (to a local match or remotely).
        carried_names = {c["name"] for c in manifest["components"]}
        for rebind in plan.resource_rebinds:
            if rebind.binding_name in carried_names:
                continue
            if app.has_component(rebind.binding_name):
                manifest["components"].append(
                    app.component(rebind.binding_name).to_dict())
        ma_name = f"ma-{plan.app_name}-{next(manager._ma_seq)}"
        ma = middleware.container.create_agent(MDMobileAgent, ma_name)
        ma.load_cargo(manifest, snapshot.to_dict(), plan_to_dict(plan))
        ctx.ma = ma
        result = ma.do_move(plan.destination)
        outcome.bytes_transferred = result.size_bytes
        outcome.depart_local = 0.0  # filled when checkout completes

        def on_moved(r):
            outcome.depart_local = r.depart_local
            outcome.arrive_local = r.arrive_local
            outcome.agent_departed_at = r.checked_out_at
            outcome.agent_arrived_at = r.arrived_at
            outcome.transfer_retries = r.transfer_retries
            outcome.transfer_resumed = r.transfer_resumed
            outcome.dedup_hits = r.dedup_hits
            for entry in r.recovery_log:
                outcome.log(f"transfer recovery: {entry}")
            if r.failed:
                ctx.fail(r.failure_reason,
                         before_finish=lambda: manager._count_failure(plan))

        result.on_complete(on_moved)
        if plan.kind is MigrationKind.FOLLOW_ME:
            # Cut-paste: the source copy stops (data files stay on disk for
            # remote streaming, but the user-facing instance is gone).
            app.stop()
            outcome.log(f"source instance of {app.name} stopped")

    def rollback(self, ctx: MigrationContext) -> None:
        if ctx.ma is not None and ctx.ma_arrived:
            # The agent made it across but the destination failed to power
            # the app up: clean the courier out of the destination container.
            ctx.ma.do_delete()
        middleware = ctx.middleware
        if middleware is None:
            return
        plan = ctx.plan
        if plan is not None and plan.kind is MigrationKind.FOLLOW_ME:
            middleware.mobility_manager._rollback(ctx.app, ctx.snapshot,
                                                  ctx.outcome)


class CheckinPhase(MiddlewarePhase):
    """Destination check-in: stamp the migrate phase, unwrap the cargo,
    install or merge components, and pay the restore cost (completion
    continues in ``MobilityManager._rebind_and_open``)."""

    name = "checkin"
    contract = MiddlewareContract(requires=frozenset({"agent"}),
                                  provides=frozenset({"arrival"}),
                                  site="destination")

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.destination_middleware
        manager = middleware.mobility_manager
        ma = ctx.ma
        outcome = ctx.outcome
        plan = ctx.arrived_plan
        manifest = ma.manifest
        snapshot_data = ma.snapshot
        now = manager.loop.now
        if outcome is not None:
            outcome.migrate_done_at = now
            outcome.log(f"mobile agent {ma.local_name} checked in at "
                        f"{now:.1f}")
            phase = getattr(outcome, "_obs_phase", None)
            if phase is not None and not phase.finished:
                # The migrate phase ends here, on the destination's clock.
                phase.end(host=middleware.host)
                outcome._obs_phase = outcome._obs_root.child(
                    "resume", host=middleware.host, app=plan.app_name)
        app = middleware.applications.get(plan.app_name)
        if app is None:
            app = Application.from_manifest(manifest)
            middleware.install_application(app, register=True)
            ctx.dest_installed = True
        else:
            merged = app.merge_components(manifest)
            if outcome is not None and merged:
                outcome.log(f"merged carried components: {merged}")
        ctx.dest_app = app
        ctx.snapshot_data = snapshot_data
        config = manager.config
        cpu = middleware.host.cpu_factor
        size_mb = snapshot_data.get("size_bytes", 0) / 1e6
        resume_cost = (config.resume_base_ms
                       + config.restore_ms_per_mb * size_mb
                       + config.rebind_ms_per_resource
                       * len(plan.resource_rebinds)
                       + config.adapt_ms) * cpu
        manager.loop.call_later(resume_cost, manager._rebind_and_open, ctx)

    def rollback(self, ctx: MigrationContext) -> None:
        middleware = ctx.destination_middleware
        if middleware is None or not ctx.dest_installed:
            return
        app = ctx.dest_app
        if app is not None and app.status is not AppStatus.RUNNING \
                and app.name in middleware.applications:
            middleware.uninstall_application(app.name)

    def describe_error(self, ctx: MigrationContext,
                       exc: BaseException) -> str:
        host = ctx.destination_middleware.host_name \
            if ctx.destination_middleware is not None else "?"
        return f"unwrap failed at {host}: {exc}"


class RebindPhase(MiddlewarePhase):
    """Re-establish resource bindings per the plan and open remote data
    streams ("played remotely through URL in the original host")."""

    name = "rebind"
    contract = MiddlewareContract(requires=frozenset({"arrival"}),
                                  provides=frozenset({"bindings"}),
                                  site="destination")

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.destination_middleware
        manager = middleware.mobility_manager
        app = ctx.dest_app
        plan = ctx.arrived_plan
        outcome = ctx.outcome
        for rebind in plan.resource_rebinds:
            if app.has_component(rebind.binding_name):
                binding = app.component(rebind.binding_name)
                binding.rebind(rebind.target_resource or
                               rebind.original_resource, rebind.mode)
                if outcome is not None:
                    outcome.log(f"rebound {rebind.binding_name} -> "
                                f"{rebind.target_resource} ({rebind.mode})")
        remote_total = sum(plan.remote_data_bytes.values())
        if remote_total > 0:
            # "They will be played remotely through URL in the original
            # host": open the stream by fetching the initial fraction.
            fetch_bytes = int(remote_total
                              * manager.config.remote_open_fraction)
            manager.loop.call_later(
                manager.config.remote_open_base_ms,
                middleware.fetch_remote_data, plan.source, plan.app_name,
                fetch_bytes, ctx.complete_phase, ctx.fail)
            if outcome is not None:
                outcome.log(f"opening remote data: fetching {fetch_bytes} B "
                            f"from {plan.source}")
        else:
            ctx.complete_phase()


class PowerUpPhase(MiddlewarePhase):
    """Restore state, start, adapt, re-establish sync links, register and
    publish the resumption -- the app is running at the destination."""

    name = "powerup"
    contract = MiddlewareContract(requires=frozenset({"bindings"}),
                                  provides=frozenset({"resumed"}),
                                  site="destination")

    def run(self, ctx: MigrationContext) -> None:
        from repro.core.snapshot import Snapshot

        middleware = ctx.destination_middleware
        manager = middleware.mobility_manager
        app = ctx.dest_app
        plan = ctx.arrived_plan
        outcome = ctx.outcome
        ma = ctx.ma
        snapshot = Snapshot.from_dict(ctx.snapshot_data)
        if app.status is AppStatus.RUNNING:
            # Already running here (e.g. a sync replica); just refresh state.
            middleware.snapshot_manager.restore(app, snapshot)
        else:
            middleware.snapshot_manager.restore(app, snapshot)
            app.start(middleware)
        # Adapt to the destination device and the owner's preferences.
        report = middleware.adaptor.adapt(app, middleware.device_profile,
                                          app.user_profile)
        if outcome is not None and report.changes:
            outcome.log(f"adapted: {len(report.changes)} attribute changes")
        if plan.kind is MigrationKind.CLONE_DISPATCH:
            middleware.establish_sync_replica(app, plan.source)
            if outcome is not None:
                outcome.log(f"sync link established to master {plan.source}")
        sync_master = getattr(ma, "manifest", {}).get("sync_master")
        if sync_master is not None:
            # Master handoff: reclaim the replica set and re-point every
            # replica at this host.
            middleware.assume_sync_master(app, sync_master["replicas"])
            if outcome is not None:
                outcome.log(f"sync master moved; re-pointed replicas "
                            f"{sync_master['replicas']}")
        middleware.registry_client.call(
            "register_application",
            {"record": middleware._application_record(app).to_dict()},
            lambda result, error: None)
        middleware.publish_app_event(app, "resumed")
        if outcome is not None:
            outcome.resume_done_at = manager.loop.now
            outcome.completed = True
            obs = manager.loop.observability
            if obs is not None:
                end_outcome_spans(outcome, host=middleware.host,
                                  bytes=outcome.bytes_transferred)
                metrics = obs.metrics
                metrics.counter("migration.completed",
                                kind=plan.kind.value).inc()
                for phase_name, value in outcome.phases().items():
                    metrics.histogram("migration.phase_ms", phase=phase_name,
                                      app=plan.app_name).observe(value)
            outcome._finish()
        ma.do_delete()
        ctx.complete_phase()


# -- pre-staging phases -----------------------------------------------------


class PrestageAdmissionPhase(MiddlewarePhase):
    """Validate a pre-staging request and mint its outcome."""

    name = "admission"
    contract = MiddlewareContract(requires=frozenset({"request"}),
                                  provides=frozenset({"app", "outcome"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        request = ctx.request
        app = middleware.application(request.app_name)
        if request.destination == middleware.host_name:
            raise MigrationError("cannot prestage to the current host")
        if not middleware.network.has_host(request.destination):
            raise MigrationError(
                f"unknown destination host {request.destination!r}")
        provisional = MigrationPlan(request.app_name, middleware.host_name,
                                    request.destination,
                                    MigrationKind.FOLLOW_ME,
                                    BindingPolicy.ADAPTIVE, prestage=True)
        outcome = MigrationOutcome(provisional)
        token = middleware.deployment.new_outcome_token(request.app_name)
        middleware.deployment.outcomes[token] = outcome
        outcome._pipeline_ctx = ctx  # type: ignore[attr-defined]
        ctx.app = app
        ctx.outcome = outcome
        ctx.token = token
        ctx.complete_phase()


class PrestagePlanningPhase(MiddlewarePhase):
    """Plan which components to push ahead; completes the outcome early
    when the destination already holds every component kind."""

    name = "planning"
    contract = MiddlewareContract(requires=frozenset({"app", "outcome"}),
                                  provides=frozenset({"plan"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        app = ctx.app
        request = ctx.request
        outcome = ctx.outcome

        def with_components(components, error):
            if error is not None:
                ctx.fail(f"registry lookup failed: {error}")
                return
            plan = middleware.resolver.plan(
                app, middleware.host_name, request.destination,
                destination_components=components or [],
                kind=MigrationKind.FOLLOW_ME,
                policy=BindingPolicy.ADAPTIVE)
            # Pre-staging ships code/UI only: data streams (or travels)
            # at real migration time, and resource bindings re-match then.
            plan.remote_data = []
            plan.remote_data_bytes = {}
            plan.resource_rebinds = []
            plan.prestage = True
            plan.token = ctx.token
            outcome.plan = plan
            ctx.plan = plan
            if not plan.carry_components:
                outcome.completed = True
                outcome.log("nothing to prestage: destination already has "
                            "every component kind")
                outcome._finish()
                ctx.finish_early()
                return
            outcome.log(f"prestage plan: {plan.summary()}")
            ctx.complete_phase()

        middleware.registry_client.call(
            "components_at",
            {"app_name": request.app_name, "host": request.destination},
            with_components)


class PackPhase(MiddlewarePhase):
    """Open the prestage span and pay the packing cost (completion
    continues in ``MobilityManager._send_prestage``)."""

    name = "pack"
    contract = MiddlewareContract(requires=frozenset({"plan"}),
                                  provides=frozenset({"package"}))

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        manager = middleware.mobility_manager
        plan = ctx.plan
        outcome = ctx.outcome
        plan.prestage = True
        outcome.started_at = manager.loop.now
        obs = manager.loop.observability
        if obs is not None:
            outcome._obs_root = obs.tracer.begin_span(
                "app.prestage", category="migration",
                host=middleware.host, app=plan.app_name,
                source=plan.source, destination=plan.destination)
            outcome.on_complete(
                lambda o: end_outcome_spans(o, failed=o.failed))
        pack_cost = (manager.config.clone_snapshot_base_ms
                     * middleware.host.cpu_factor)
        manager.loop.call_later(pack_cost, manager._send_prestage, ctx)


class PrestageTransferPhase(MiddlewarePhase):
    """Ship the component package in a mobile agent; the app keeps
    running at the source untouched (so a transfer failure needs no
    rollback)."""

    name = "transfer"
    contract = MiddlewareContract(requires=frozenset({"package"}),
                                  provides=frozenset({"agent"}))
    handoff = True

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.middleware
        manager = middleware.mobility_manager
        app = ctx.app
        plan = ctx.plan
        outcome = ctx.outcome
        outcome.suspend_done_at = manager.loop.now
        manifest = app.to_manifest(plan.carry_components)
        empty_snapshot = {
            "app_name": app.name, "snapshot_id": 0,
            "taken_at": manager.loop.now, "coordinator_state": {},
            "app_state": {}, "component_versions": {}, "size_bytes": 64,
        }
        ma_name = f"pre-{plan.app_name}-{next(manager._ma_seq)}"
        ma = middleware.container.create_agent(MDMobileAgent, ma_name)
        ma.load_cargo(manifest, empty_snapshot, plan_to_dict(plan))
        ctx.ma = ma
        result = ma.do_move(plan.destination)
        outcome.bytes_transferred = result.size_bytes

        def on_moved(r):
            if r.failed:
                ctx.fail(r.failure_reason,
                         before_finish=lambda: manager._count_failure(plan))

        result.on_complete(on_moved)


class InstallPhase(MiddlewarePhase):
    """Destination check-in for a prestage package: unwrap, merge the
    components and pay the install cost (completion continues in
    ``MobilityManager._finish_prestage``)."""

    name = "install"
    contract = MiddlewareContract(requires=frozenset({"agent"}),
                                  provides=frozenset({"arrival"}),
                                  site="destination")

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.destination_middleware
        manager = middleware.mobility_manager
        ma = ctx.ma
        outcome = ctx.outcome
        plan = ctx.arrived_plan
        manifest = ma.manifest
        now = manager.loop.now
        if outcome is not None:
            outcome.migrate_done_at = now
            outcome.log(f"mobile agent {ma.local_name} checked in at "
                        f"{now:.1f}")
        app = middleware.applications.get(plan.app_name)
        if app is None:
            app = Application.from_manifest(manifest)
            middleware.install_application(app, register=True)
            ctx.dest_installed = True
        else:
            merged = app.merge_components(manifest)
            if outcome is not None and merged:
                outcome.log(f"merged carried components: {merged}")
        ctx.dest_app = app
        install_cost = (manager.config.clone_snapshot_base_ms
                        * middleware.host.cpu_factor)
        manager.loop.call_later(install_cost, manager._finish_prestage, ctx)

    def describe_error(self, ctx: MigrationContext,
                       exc: BaseException) -> str:
        host = ctx.destination_middleware.host_name \
            if ctx.destination_middleware is not None else "?"
        return f"unwrap failed at {host}: {exc}"


class PrestageFinishPhase(MiddlewarePhase):
    """Register the pre-staged components and close the outcome."""

    name = "finish"
    contract = MiddlewareContract(requires=frozenset({"arrival"}),
                                  provides=frozenset({"resumed"}),
                                  site="destination")

    def run(self, ctx: MigrationContext) -> None:
        middleware = ctx.destination_middleware
        manager = middleware.mobility_manager
        app = ctx.dest_app
        plan = ctx.arrived_plan
        outcome = ctx.outcome
        ma = ctx.ma
        middleware.registry_client.call(
            "register_application",
            {"record": middleware._application_record(app).to_dict()},
            lambda result, error: None)
        if outcome is not None:
            outcome.resume_done_at = manager.loop.now
            outcome.completed = True
            outcome.log(f"prestaged {plan.carry_components} on "
                        f"{middleware.host_name}")
            outcome._finish()
        ma.do_delete()
        ctx.complete_phase()


# -- stack builders ---------------------------------------------------------


#: The default migration stack's contracts, by phase name (documentation
#: and introspection surface; the builders below construct the phases).
MIDDLEWARE_CONTRACTS: Dict[str, MiddlewareContract] = {
    phase.name: phase.contract
    for phase in (AdmissionPhase(), PlanningPhase(),
                  DirectNegotiationPhase(), SuspendPhase(), CapturePhase(),
                  TransferPhase(), CheckinPhase(), RebindPhase(),
                  PowerUpPhase())
}

#: Protocols a middleware config may select.
MIGRATION_PROTOCOLS = ("direct", "fipa")


def migration_phases(protocol: str = "direct"
                     ) -> Tuple[MiddlewarePhase, ...]:
    """The ordered phase objects of one migration stack."""
    if protocol == "direct":
        negotiation: MiddlewarePhase = DirectNegotiationPhase()
    elif protocol == "fipa":
        negotiation = FipaNegotiationPhase()
    else:
        raise PipelineError(f"unknown migration protocol {protocol!r} "
                            f"(expected one of {MIGRATION_PROTOCOLS})")
    return (AdmissionPhase(), PlanningPhase(), negotiation, SuspendPhase(),
            CapturePhase(), TransferPhase(), CheckinPhase(), RebindPhase(),
            PowerUpPhase())


def build_migration_pipeline(config) -> MigrationPipeline:
    """The migration stack for one middleware config (validated)."""
    protocol = getattr(config, "migration_protocol", "direct")
    return MigrationPipeline(
        f"migration/{protocol}", migration_phases(protocol),
        observe=(protocol != "direct"))


def build_prestage_pipeline(config) -> MigrationPipeline:
    """The pre-staging stack (always direct: it ships code, not state)."""
    phases = (PrestageAdmissionPhase(), PrestagePlanningPhase(),
              PackPhase(), PrestageTransferPhase(), InstallPhase(),
              PrestageFinishPhase())
    return MigrationPipeline("prestage/direct", phases)
