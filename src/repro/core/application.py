"""The two-level application model (paper Fig. 3).

Upper level: logic, presentations, data, resource bindings, plus profiles --
the parts users see.  Base level: coordinator, snapshot management, mobile
agent binding and adaptor -- "transient to end users", provided by the
middleware when the application is launched.

Application classes register with :func:`register_application_type` so a
mobile agent can re-materialize an app (or the missing parts of one) at the
destination host from its plain-dict manifest.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Type

from repro.core.components import (
    Component,
    ComponentKind,
    DataComponent,
    PresentationComponent,
    ResourceBinding,
)
from repro.core.coordinator import Coordinator
from repro.core.errors import ApplicationError
from repro.core.profiles import ResourceProfile, UserProfile


class AppStatus(enum.Enum):
    #: Present on a host (components installed) but not executing.
    INSTALLED = "installed"
    RUNNING = "running"
    SUSPENDED = "suspended"


_APP_TYPES: Dict[str, Type["Application"]] = {}


def register_application_type(cls: Type["Application"]) -> Type["Application"]:
    """Class decorator making an Application subclass re-instantiable from a
    manifest at a destination host."""
    _APP_TYPES[cls.__name__] = cls
    return cls


def application_type(name: str) -> Type["Application"]:
    try:
        return _APP_TYPES[name]
    except KeyError:
        raise ApplicationError(
            f"application type {name!r} is not registered; decorate it "
            f"with @register_application_type") from None


@register_application_type
class Application:
    """Base application; subclasses add domain behaviour via the hooks.

    Subclasses keep their custom runtime state in plain data returned by
    :meth:`get_app_state` -- that is what the snapshot manager captures and
    what survives a migration.
    """

    def __init__(self, name: str, owner: str,
                 device_requirements: Optional[Dict[str, Any]] = None,
                 user_profile: Optional[UserProfile] = None,
                 resource_profile: Optional[ResourceProfile] = None):
        if not name or not owner:
            raise ApplicationError("application needs a name and an owner")
        self.name = name
        self.owner = owner
        self.device_requirements = dict(device_requirements or {})
        self.user_profile = user_profile or UserProfile(owner)
        self.resource_profile = resource_profile or ResourceProfile()
        self.status = AppStatus.INSTALLED
        self.host: Optional[str] = None
        self.coordinator = Coordinator(name)
        self._components: Dict[str, Component] = {}
        #: Set by the middleware at launch; None while uninstalled.
        self.middleware = None

    # -- components -----------------------------------------------------------

    def add_component(self, component: Component) -> Component:
        if component.name in self._components:
            raise ApplicationError(
                f"duplicate component {component.name!r} in {self.name!r}")
        self._components[component.name] = component
        if isinstance(component, PresentationComponent):
            self.coordinator.register_observer(component)
        return component

    def remove_component(self, name: str) -> Component:
        component = self.component(name)
        del self._components[name]
        if isinstance(component, PresentationComponent):
            self.coordinator.unregister_observer(component)
        return component

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise ApplicationError(
                f"no component {name!r} in application {self.name!r}") from None

    def has_component(self, name: str) -> bool:
        return name in self._components

    @property
    def components(self) -> List[Component]:
        return list(self._components.values())

    def components_of_kind(self, kind: ComponentKind) -> List[Component]:
        return [c for c in self._components.values() if c.kind is kind]

    @property
    def presentations(self) -> List[PresentationComponent]:
        return [c for c in self._components.values()
                if isinstance(c, PresentationComponent)]

    @property
    def data_components(self) -> List[DataComponent]:
        return [c for c in self._components.values()
                if isinstance(c, DataComponent)]

    @property
    def resource_bindings(self) -> List[ResourceBinding]:
        return [c for c in self._components.values()
                if isinstance(c, ResourceBinding)]

    def component_kinds(self) -> List[str]:
        """Kind names present, for registry records ("logic", ...)."""
        return sorted({c.kind.value for c in self._components.values()})

    @property
    def total_size_bytes(self) -> int:
        return sum(c.size_bytes for c in self._components.values())

    # -- lifecycle (driven by the middleware) -------------------------------------

    def start(self, middleware) -> None:
        if self.status is AppStatus.RUNNING:
            raise ApplicationError(f"{self.name!r} is already running")
        self.middleware = middleware
        self.host = middleware.host_name
        self.coordinator.host = middleware.host_name
        self.coordinator.resume()
        self.status = AppStatus.RUNNING
        self.on_start()

    def suspend(self) -> None:
        if self.status is not AppStatus.RUNNING:
            raise ApplicationError(
                f"cannot suspend {self.name!r} from {self.status}")
        self.on_suspend()
        self.coordinator.suspend()
        self.status = AppStatus.SUSPENDED

    def resume(self) -> None:
        if self.status is not AppStatus.SUSPENDED:
            raise ApplicationError(
                f"cannot resume {self.name!r} from {self.status}")
        self.coordinator.resume()
        self.status = AppStatus.RUNNING
        self.on_resume()

    def stop(self) -> None:
        if self.status is AppStatus.RUNNING:
            self.on_suspend()
        self.coordinator.suspend()
        self.status = AppStatus.INSTALLED

    # -- domain hooks (override in subclasses) --------------------------------------

    def on_start(self) -> None:
        """Called when the application starts running on a host."""

    def on_suspend(self) -> None:
        """Called just before suspension (stop playback, flush buffers)."""

    def on_resume(self) -> None:
        """Called after resumption at the (possibly new) host."""

    # -- state (captured by the snapshot manager) -------------------------------------

    def get_app_state(self) -> Dict[str, Any]:
        """Custom plain-data runtime state; override in subclasses."""
        return {}

    def restore_app_state(self, state: Dict[str, Any]) -> None:
        """Restore what :meth:`get_app_state` captured; override."""

    # -- manifests (for migration) ------------------------------------------------------

    def to_manifest(self, component_names: Optional[List[str]] = None
                    ) -> Dict[str, Any]:
        """Serialize the app shell plus selected components to plain data."""
        if component_names is None:
            selected = list(self._components.values())
        else:
            selected = [self.component(n) for n in component_names]
        return {
            "type": type(self).__name__,
            "name": self.name,
            "owner": self.owner,
            "device_requirements": dict(self.device_requirements),
            "user_profile": self.user_profile.to_dict(),
            "resource_profile": self.resource_profile.to_dict(),
            "components": [c.to_dict() for c in selected],
        }

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "Application":
        """Re-materialize an application shell + components from a manifest."""
        app_cls = application_type(manifest["type"])
        app = app_cls(
            manifest["name"],
            manifest["owner"],
            device_requirements=manifest.get("device_requirements"),
            user_profile=UserProfile.from_dict(manifest["user_profile"]),
            resource_profile=ResourceProfile.from_dict(
                manifest["resource_profile"]),
        )
        for data in manifest.get("components", ()):
            app.add_component(Component.from_dict(data))
        return app

    def merge_components(self, manifest: Dict[str, Any]) -> List[str]:
        """Absorb carried components into this (partial) installation.

        Same-name components are replaced when the carried version is newer.
        Returns the names of components actually merged.
        """
        merged = []
        for data in manifest.get("components", ()):
            incoming = Component.from_dict(data)
            existing = self._components.get(incoming.name)
            if existing is not None:
                if incoming.version < existing.version:
                    continue
                self.remove_component(existing.name)
            self.add_component(incoming)
            merged.append(incoming.name)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name!r} {self.status.value} "
                f"on {self.host}>")
