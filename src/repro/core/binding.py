"""Adaptive component binding: decide what migrates, what rebinds.

The headline idea of the paper: "flexible bindings of application
components avoid migrating whole application".  Given what the destination
already has (from the registry) the resolver computes a
:class:`MigrationPlan`:

- **STATIC** policy (the baseline from the authors' earlier system [7]):
  every transferable component -- data, logic, user interface -- migrates
  with the user.
- **ADAPTIVE** policy: only components *missing* at the destination are
  carried; present ones are reused; bulky data that is absent can stay
  behind and be "played remotely through URL in the original host";
  resource bindings re-match semantically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.application import Application
from repro.core.components import ComponentKind
from repro.core.errors import MigrationError


class MigrationKind(enum.Enum):
    """Fig. 1's mobility-mode axis."""

    #: Cut-paste: the application follows the user; the source copy stops.
    FOLLOW_ME = "follow-me"
    #: Copy-paste: a clone is dispatched; source keeps running and the two
    #: stay synchronized through the coordinator.
    CLONE_DISPATCH = "clone-dispatch"


class BindingPolicy(enum.Enum):
    ADAPTIVE = "adaptive"
    STATIC = "static"


@dataclass
class ResourceRebind:
    """Planned rebinding for one resource binding component."""

    binding_name: str
    original_resource: str
    target_resource: Optional[str]
    #: "local" (compatible resource at destination), "remote" (keep using
    #: the original over the network), or "unbound".
    mode: str = "local"


@dataclass
class MigrationPlan:
    """What a migration will do, before it happens."""

    app_name: str
    source: str
    destination: str
    kind: MigrationKind = MigrationKind.FOLLOW_ME
    policy: BindingPolicy = BindingPolicy.ADAPTIVE
    #: Component names wrapped by the mobile agent.
    carry_components: List[str] = field(default_factory=list)
    #: Component names reused from the destination's installation.
    reuse_components: List[str] = field(default_factory=list)
    #: Data component names left behind, streamed from the source.
    remote_data: List[str] = field(default_factory=list)
    #: Original sizes of remote-bound data (drives remote-open cost).
    remote_data_bytes: Dict[str, int] = field(default_factory=dict)
    resource_rebinds: List[ResourceRebind] = field(default_factory=list)
    estimated_bytes: int = 0
    #: Correlation token linking the source-side outcome to the dest side.
    token: str = ""
    #: Pre-staging: install carried components at the destination without
    #: moving execution there (predictor-driven warm-up).
    prestage: bool = False

    def summary(self) -> str:
        return (f"{self.app_name}: {self.source} -> {self.destination} "
                f"[{self.kind.value}/{self.policy.value}] carry="
                f"{self.carry_components} reuse={self.reuse_components} "
                f"remote={self.remote_data} (~{self.estimated_bytes} B)")


class BindingResolver:
    """Builds migration plans from destination inventory information."""

    def __init__(self, data_carry_threshold_bytes: int = 512_000):
        #: Data components up to this size are carried even when absent at
        #: the destination; larger ones bind remotely under ADAPTIVE.
        self.data_carry_threshold_bytes = int(data_carry_threshold_bytes)

    def plan(self, app: Application, source: str, destination: str,
             destination_components: List[str],
             resource_matches: Optional[Dict[str, Optional[str]]] = None,
             kind: MigrationKind = MigrationKind.FOLLOW_ME,
             policy: BindingPolicy = BindingPolicy.ADAPTIVE) -> MigrationPlan:
        """Compute the plan.

        ``destination_components`` is the list of component *kind* names the
        destination installation already has (from
        ``RegistryCenter.components_at``).  ``resource_matches`` maps each
        resource binding's original resource id to a compatible destination
        resource id (or None when nothing matched).
        """
        if source == destination:
            raise MigrationError("source and destination are the same host")
        plan = MigrationPlan(app.name, source, destination, kind, policy)
        dest_kinds = set(destination_components)
        matches = resource_matches or {}
        for component in app.components:
            if component.kind is ComponentKind.RESOURCE:
                plan.resource_rebinds.append(
                    self._rebind(component, matches))
                continue
            if policy is BindingPolicy.STATIC:
                self._carry(plan, component)
                continue
            # ADAPTIVE: reuse what the destination already has.
            if component.kind.value in dest_kinds:
                plan.reuse_components.append(component.name)
            elif (component.kind is ComponentKind.DATA
                    and component.size_bytes > self.data_carry_threshold_bytes
                    and kind is MigrationKind.FOLLOW_ME):
                # Follow-me can stream from the stopped source copy; a
                # clone-dispatch replica needs its own data (the paper's MAs
                # "carry the slides to the destination").
                plan.remote_data.append(component.name)
                plan.remote_data_bytes[component.name] = component.size_bytes
            else:
                self._carry(plan, component)
        return plan

    def _carry(self, plan: MigrationPlan, component) -> None:
        if not component.transferable:
            plan.remote_data.append(component.name)
            plan.remote_data_bytes[component.name] = component.size_bytes
            return
        plan.carry_components.append(component.name)
        plan.estimated_bytes += component.size_bytes

    @staticmethod
    def _rebind(component, matches: Dict[str, Optional[str]]
                ) -> ResourceRebind:
        target = matches.get(component.resource_id)
        if target is not None:
            return ResourceRebind(component.name, component.resource_id,
                                  target, "local")
        # No compatible resource at the destination: keep using the
        # original remotely (printer at the old office still prints).
        return ResourceRebind(component.name, component.resource_id,
                              component.resource_id, "remote")
