"""The adaptor: post-migration adaptation to the destination environment.

"After migration, the application needs to be adapted in the new
environments; the mobile agent will contact adaptor to conduct necessary
adaptations according to some customizable parameters to adjust some sizes,
resolutions, etc." (paper §4.2.2.)

Adaptation covers the paper's two customization axes (§3.3): per-device
(scale presentation geometry to the screen, drop features the device lacks)
and per-user (apply handedness and preference overrides).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.core.application import Application
from repro.core.components import PresentationComponent
from repro.core.errors import AdaptationError
from repro.core.profiles import DeviceProfile, UserProfile


@dataclass
class AdaptationChange:
    """One recorded change: which component/attribute, from what, to what."""

    component: str
    attribute: str
    before: Any
    after: Any


@dataclass
class AdaptationReport:
    """Everything the adaptor did to one application."""

    app_name: str
    host: str
    changes: List[AdaptationChange] = field(default_factory=list)
    satisfied: bool = True
    notes: List[str] = field(default_factory=list)

    def changed(self, component: str, attribute: str) -> bool:
        return any(c.component == component and c.attribute == attribute
                   for c in self.changes)


class Adaptor:
    """Adapts presentations to a device profile and a user profile."""

    def adapt(self, app: Application, device: DeviceProfile,
              user: UserProfile = None) -> AdaptationReport:
        """Rewrite presentation attributes in place; returns the report.

        Raises AdaptationError when the device cannot satisfy the app's
        hard requirements at all.
        """
        if not device.satisfies(app.device_requirements):
            raise AdaptationError(
                f"device {device.host!r} does not satisfy requirements "
                f"{app.device_requirements} of {app.name!r}")
        user = user if user is not None else app.user_profile
        report = AdaptationReport(app.name, device.host)
        for presentation in app.presentations:
            self._fit_geometry(presentation, device, report)
            self._apply_resolution(presentation, device, report)
            self._apply_user(presentation, user, report)
            if device.is_handheld:
                self._simplify_for_handheld(presentation, report)
        return report

    @staticmethod
    def _record(report: AdaptationReport, comp: PresentationComponent,
                attribute: str, value: Any) -> None:
        before = comp.attributes.get(attribute)
        if before != value:
            comp.attributes[attribute] = value
            report.changes.append(
                AdaptationChange(comp.name, attribute, before, value))

    def _fit_geometry(self, comp: PresentationComponent,
                      device: DeviceProfile, report: AdaptationReport) -> None:
        width = comp.attributes.get("width", 800)
        height = comp.attributes.get("height", 600)
        scale = min(device.screen_width / max(width, 1),
                    device.screen_height / max(height, 1), 1.0)
        if scale < 1.0:
            self._record(report, comp, "width", int(width * scale))
            self._record(report, comp, "height", int(height * scale))
            report.notes.append(
                f"{comp.name}: scaled by {scale:.2f} to fit "
                f"{device.screen_width}x{device.screen_height}")

    def _apply_resolution(self, comp: PresentationComponent,
                          device: DeviceProfile,
                          report: AdaptationReport) -> None:
        self._record(report, comp, "resolution_dpi", device.resolution_dpi)

    def _apply_user(self, comp: PresentationComponent, user: UserProfile,
                    report: AdaptationReport) -> None:
        layout = "mirrored" if user.handedness == "left" else "standard"
        self._record(report, comp, "layout", layout)
        for key, value in user.preferences.items():
            self._record(report, comp, f"pref.{key}", value)

    def _simplify_for_handheld(self, comp: PresentationComponent,
                               report: AdaptationReport) -> None:
        self._record(report, comp, "toolbar", "compact")
        self._record(report, comp, "animations", False)
