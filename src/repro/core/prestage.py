"""Predictor-driven component pre-staging.

The paper calls for "context reasoning and prediction functionalities ...
to improve the performance" (§3.4).  This service closes that loop: every
fused location event updates the per-user Markov model; when the predicted
next space is confident enough, the components a user's applications would
need there are pushed ahead of time.  When the user actually moves, the
adaptive binding resolver finds them installed and wraps only the state --
cutting the user-visible migration latency to near its floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.context.model import ContextEvent, TOPIC_LOCATION
from repro.core.application import AppStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import Deployment


class PrestagingService:
    """Watches location events and pre-stages applications.

    One service per deployment; enable with
    :meth:`Deployment.enable_prestaging`.
    """

    def __init__(self, deployment: "Deployment",
                 probability_threshold: float = 0.5):
        if not 0.0 < probability_threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1]: {probability_threshold}")
        self.deployment = deployment
        self.probability_threshold = probability_threshold
        self.prestages_started = 0
        self.predictions_skipped = 0
        #: (app, destination) pairs already pushed, to avoid re-pushing.
        self._already_staged: set = set()
        deployment.bus.subscribe(TOPIC_LOCATION, self._on_location)

    def _on_location(self, event: ContextEvent) -> None:
        user = event.subject
        predicted = self.deployment.predictor.predict(user)
        if predicted is None:
            self.predictions_skipped += 1
            return
        probability = self.deployment.predictor.probability(user, predicted)
        if probability < self.probability_threshold:
            self.predictions_skipped += 1
            return
        self._stage_for(user, predicted)

    def _stage_for(self, user: str, predicted_space: str) -> None:
        deployment = self.deployment
        for middleware in deployment.middlewares.values():
            for app in list(middleware.applications.values()):
                if app.owner != user or app.status is not AppStatus.RUNNING:
                    continue
                if not app.user_profile.preference("follow_user", True):
                    continue
                if deployment.topology.space_of(middleware.host_name) \
                        == predicted_space:
                    continue  # already where the user is headed
                destination = self._choose_destination(
                    middleware, app, predicted_space)
                if destination is None:
                    continue
                key = (app.name, destination)
                if key in self._already_staged:
                    continue
                self._already_staged.add(key)
                self.prestages_started += 1
                middleware.prestage(app.name, destination)

    def _choose_destination(self, middleware, app,
                            predicted_space: str) -> Optional[str]:
        """Pick the host the AA would pick, so staged components land where
        the later migration actually goes.

        Under the contract-net strategy this ranks candidates by the same
        (load, cpu, name) key the hosting bids carry -- computed directly,
        since pre-staging is a deployment-level optimization service.
        """
        deployment = self.deployment
        if middleware.config.destination_strategy != "contract-net":
            return deployment.find_host_in_space(
                predicted_space, app.device_requirements,
                exclude=middleware.host_name)
        try:
            space = deployment.topology.space(predicted_space)
        except Exception:
            return None
        candidates = []
        for host in space.host_names:
            if host == middleware.host_name or \
                    host not in deployment.middlewares:
                continue
            peer = deployment.middlewares[host]
            if not peer.device_profile.satisfies(app.device_requirements):
                continue
            running = sum(1 for a in peer.applications.values()
                          if a.status is AppStatus.RUNNING)
            candidates.append((running, peer.device_profile.cpu_factor,
                               host))
        if not candidates:
            return None
        return min(candidates)[2]
