"""Predictor-driven component pre-staging.

The paper calls for "context reasoning and prediction functionalities ...
to improve the performance" (§3.4).  This service closes that loop: every
fused location event updates the per-user Markov model; when the predicted
next space is confident enough, the components a user's applications would
need there are pushed ahead of time.  When the user actually moves, the
adaptive binding resolver finds them installed and wraps only the state --
cutting the user-visible migration latency to near its floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.context.model import ContextEvent, TOPIC_APP, TOPIC_LOCATION
from repro.core.application import AppStatus
from repro.registry.federation import INVALIDATING_EVENTS

#: Application lifecycle transitions that invalidate staged pairs: after
#: any of these the app's component footprint (or its very existence at
#: the staged destination) may have changed, so earlier pushes no longer
#: guarantee anything and the destination must be re-evaluated.  The
#: federated registry shares the same seam: these events also invalidate
#: its cached lookups (see :mod:`repro.registry.federation`).
_INVALIDATING_EVENTS = INVALIDATING_EVENTS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import Deployment


class PrestagingService:
    """Watches location events and pre-stages applications.

    One service per deployment; enable with
    :meth:`Deployment.enable_prestaging`.
    """

    def __init__(self, deployment: "Deployment",
                 probability_threshold: float = 0.5):
        if not 0.0 < probability_threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1]: {probability_threshold}")
        self.deployment = deployment
        self.probability_threshold = probability_threshold
        self.prestages_started = 0
        self.predictions_skipped = 0
        #: Pushes a later migration actually used: the app resumed on a
        #: host its components had been staged to.  ``hits /
        #: prestages_started`` is the fleet prestage hit rate
        #: (:mod:`repro.obs.slo`).
        self.hits = 0
        #: (app, destination) pairs already pushed, to avoid re-pushing.
        self._already_staged: set = set()
        deployment.bus.subscribe(TOPIC_LOCATION, self._on_location)
        deployment.bus.subscribe(TOPIC_APP, self._on_app_event)

    def _on_app_event(self, event: ContextEvent) -> None:
        """Invalidate staged pairs when an app's lifecycle changes.

        Without this the ``(app, destination)`` memo was never cleared: a
        user commuting office -> lab -> office would get a pre-stage for the
        first trip only, and every later trip paid the full migration cost
        even though the predictor fired.  Any lifecycle transition (started,
        resumed after a migration, stopped, rolled-back) drops all pairs for
        that app so the next confident prediction stages it again.
        """
        if event.get("event") not in _INVALIDATING_EVENTS:
            return
        app_name = event.subject
        # A resume on a staged destination is a prestage *hit*: the
        # migration that just finished found the components installed.
        # Count it before the invalidation below drops the pair.
        if event.get("event") == "resumed" and \
                (app_name, event.get("host")) in self._already_staged:
            self.hits += 1
        stale = [key for key in self._already_staged if key[0] == app_name]
        for key in stale:
            self._already_staged.discard(key)
        # A resume also means the follow-me migration just landed.  The
        # location fix that triggered it arrived while the app was still
        # in the predicted space, so the fix staged nothing; re-evaluate
        # now that the app sits where the user is, staging the commute's
        # *next* hop ahead of time.  (Pre-staging never resumes anything,
        # so this cannot recurse.)
        if event.get("event") == "resumed" and event.get("owner"):
            self._predict_and_stage(event.get("owner"))

    def _on_location(self, event: ContextEvent) -> None:
        self._predict_and_stage(event.subject)

    def _predict_and_stage(self, user: str) -> None:
        predicted = self.deployment.predictor.predict(user)
        if predicted is None:
            self.predictions_skipped += 1
            return
        probability = self.deployment.predictor.probability(user, predicted)
        if probability < self.probability_threshold:
            self.predictions_skipped += 1
            return
        self._stage_for(user, predicted)

    def _stage_for(self, user: str, predicted_space: str) -> None:
        self.stage(user, predicted_space)

    def stage(self, user: str, predicted_space: str,
              placements=None) -> int:
        """Push ``user``'s follow-me applications toward ``predicted_space``.

        The bus-driven path passes no ``placements`` and scans the whole
        fleet for the user's apps -- fine for a building, O(hosts x apps)
        for a city.  Fleet-scale drivers (:mod:`repro.city`) that already
        track where each app runs pass ``placements`` as explicit
        ``(middleware, app)`` pairs, keeping this service's counters (and
        therefore the SLO prestage hit rate) authoritative without the
        scan.  Returns the number of pushes started.
        """
        deployment = self.deployment
        if placements is None:
            placements = [
                (middleware, app)
                for middleware in deployment.middlewares.values()
                for app in list(middleware.applications.values())]
        started = 0
        for middleware, app in placements:
            if app.owner != user or app.status is not AppStatus.RUNNING:
                continue
            if not app.user_profile.preference("follow_user", True):
                continue
            if deployment.topology.space_of(middleware.host_name) \
                    == predicted_space:
                continue  # already where the user is headed
            destination = self._choose_destination(
                middleware, app, predicted_space)
            if destination is None:
                continue
            key = (app.name, destination)
            if key in self._already_staged:
                continue
            self._already_staged.add(key)
            self.prestages_started += 1
            started += 1
            outcome = middleware.prestage(app.name, destination)
            # A failed push staged nothing: drop the memo so the next
            # confident prediction tries again.
            outcome.on_complete(
                lambda o, k=key: self._already_staged.discard(k)
                if o.failed else None)
        return started

    def _choose_destination(self, middleware, app,
                            predicted_space: str) -> Optional[str]:
        """Pick the host the AA would pick, so staged components land where
        the later migration actually goes.

        Under the contract-net strategy this ranks candidates by the same
        (load, cpu, name) key the hosting bids carry -- computed directly,
        since pre-staging is a deployment-level optimization service.

        Ordering verified against the contract-net award path: the AA's
        ``_solicit_bids`` sorts proposals by ``(running_apps, cpu_factor,
        host)`` ascending and awards the first, and the ``min(candidates)``
        below applies the identical ascending key, so for tied load the
        staged destination equals the host the later migration picks
        (asserted by ``tests/core/test_prestaging.py``).
        """
        deployment = self.deployment
        if middleware.config.destination_strategy != "contract-net":
            return deployment.find_host_in_space(
                predicted_space, app.device_requirements,
                exclude=middleware.host_name)
        try:
            space = deployment.topology.space(predicted_space)
        except Exception:
            return None
        candidates = []
        for host in space.host_names:
            if host == middleware.host_name or \
                    host not in deployment.middlewares:
                continue
            peer = deployment.middlewares[host]
            if not peer.device_profile.satisfies(app.device_requirements):
                continue
            running = sum(1 for a in peer.applications.values()
                          if a.status is AppStatus.RUNNING)
            candidates.append((running, peer.device_profile.cpu_factor,
                               host))
        if not candidates:
            return None
        return min(candidates)[2]
