"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``quickstart``      run a single follow-me migration and print the phases
- ``sweep``           run the Fig. 8/9/10 file-size sweep and print tables
- ``lecture``         run the clone-dispatch lecture scenario
- ``simcheck``        fuzz seeded scenarios under runtime invariant checks
- ``bench``           run the standing perf scenarios, write BENCH_*.json
- ``city``            run a city-scale commuter day (see docs/WORKLOADS.md)
- ``version``         print the library version
"""

from __future__ import annotations

import argparse
import sys


def _make_obs(args: argparse.Namespace):
    """Build an Observability hub iff any obs flag was passed."""
    if not (getattr(args, "trace_out", None)
            or getattr(args, "trace_jsonl", None)
            or getattr(args, "metrics", False)):
        return None
    from repro.obs import Observability
    return Observability()


def _export_obs(obs, args: argparse.Namespace) -> None:
    """Write the requested exports and/or print the metrics dashboard."""
    if obs is None:
        return
    if getattr(args, "trace_out", None):
        obs.export_chrome_trace(args.trace_out)
        print(f"chrome trace written to {args.trace_out} "
              f"(load in Perfetto / chrome://tracing)", file=sys.stderr)
    if getattr(args, "trace_jsonl", None):
        obs.export_jsonl(args.trace_jsonl)
        print(f"JSONL trace written to {args.trace_jsonl}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print()
        print(obs.dashboard())


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON file "
                             "(Perfetto-loadable)")
    parser.add_argument("--trace-jsonl", metavar="FILE", default=None,
                        help="write the span/event/metric stream as JSONL")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics dashboard after the run")


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="inject the fault plan from this JSON file "
                             "(see docs/FAULTS.md); times are relative to "
                             "the first migration")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for random fault generation and retry "
                             "jitter (default 0)")
    parser.add_argument("--random-faults", type=int, default=0, metavar="N",
                        help="without --faults: inject N seeded-random "
                             "faults instead of a scripted plan")
    parser.add_argument("--transfer-window", type=int, default=None,
                        metavar="W",
                        help="pipelined sliding-window size for chunked "
                             "transfers (default 1 = stop-and-wait); also "
                             "enables the reliability hardening on its own")


def _make_faults(args: argparse.Namespace):
    """Build a FaultConfig iff any fault flag was passed.

    Fault runs get the reliability hardening (chunked resumable transfers
    + a migration deadline) so scenarios converge through the chaos.
    """
    window = getattr(args, "transfer_window", None)
    if not (getattr(args, "faults", None)
            or getattr(args, "random_faults", 0)
            or window is not None):
        return None
    from repro.faults import FaultConfig, FaultPlan, FaultPlanError
    try:
        plan = FaultPlan.load(args.faults) if args.faults else None
    except (FaultPlanError, OSError) as exc:
        raise SystemExit(f"error: cannot load fault plan: {exc}")
    if window is not None and window < 1:
        raise SystemExit(f"error: --transfer-window must be >= 1: {window}")
    if plan is None and not args.random_faults:
        plan = FaultPlan()  # --transfer-window alone: hardening, no faults
    return FaultConfig(plan=plan, seed=args.fault_seed,
                       random_faults=args.random_faults,
                       transfer_chunk_bytes=256_000,
                       transfer_window=window if window is not None else 1,
                       migration_deadline_ms=60_000.0,
                       max_transfer_retries=8)


def _print_fault_log(deployment) -> None:
    chaos = getattr(deployment, "chaos", None)
    if chaos is None or not chaos.log:
        return
    print()
    print("fault log:")
    for record in chaos.log:
        print(f"  {record}")


def cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import BindingPolicy, Deployment
    from repro.apps import MusicPlayerApp
    from repro.core.middleware import MiddlewareConfig
    from repro.core.trace import DeploymentTracer

    obs = _make_obs(args)
    faults = _make_faults(args)
    config = MiddlewareConfig(migration_protocol=args.migration_protocol)
    d = Deployment(seed=args.seed, config=config, observability=obs,
                   faults=faults)
    d.add_space("lab")
    src = d.add_host("host1", "lab")
    dst = d.add_host("host2", "lab")
    tracer = DeploymentTracer(d)
    app = MusicPlayerApp.build("player", "alice",
                               track_bytes=int(args.size_mb * 1e6))
    src.launch_application(app)
    d.run_all()
    d.loop.advance(10_000.0)
    policy = BindingPolicy(args.policy)
    outcome = src.migrate("player", "host2", policy=policy)
    tracer.watch_outcome(outcome)
    d.run_all()
    print(tracer.timeline())
    print()
    for phase, value in outcome.phases().items():
        print(f"{phase:>8}: {value:8.1f} ms")
    if faults is not None:
        _print_fault_log(d)
        print(f"transfer retries: {outcome.transfer_retries}"
              f"{' (resumed from checkpoint)' if outcome.transfer_resumed else ''}")
        if outcome.failed:
            print(f"migration FAILED: {outcome.failure_reason}")
    _export_obs(obs, args)
    return 0 if outcome.completed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.harness import MigrationExperiment
    from repro.bench.reporting import format_comparison_table, format_phase_table
    from repro.bench.workloads import PAPER_FILE_SIZES_MB
    from repro.core import BindingPolicy

    obs = _make_obs(args)
    faults = _make_faults(args)
    experiment = MigrationExperiment(observability=obs, faults=faults)
    adaptive = experiment.sweep(PAPER_FILE_SIZES_MB, BindingPolicy.ADAPTIVE)
    static = experiment.sweep(PAPER_FILE_SIZES_MB, BindingPolicy.STATIC)
    print(format_phase_table(
        "Fig. 8 -- adaptive component binding", adaptive))
    print()
    print(format_phase_table(
        "Fig. 9 -- static component binding", static))
    print()
    print(format_comparison_table(
        "Fig. 10 -- comparative total cost", adaptive, static))
    if args.availability:
        from repro.bench.harness import availability_experiment
        from repro.bench.reporting import format_availability_table
        rows = availability_experiment(runs=args.availability_runs,
                                       seed=args.fault_seed,
                                       observability=obs)
        print()
        print(format_availability_table(
            "Availability -- migration under injected link loss "
            "(5.0M, static, reliability on)", rows))
    if args.window_sweep:
        from repro.bench.harness import transfer_window_experiment
        from repro.bench.reporting import format_window_table
        rows = transfer_window_experiment(seed=args.fault_seed or 5)
        print()
        print(format_window_table(
            "Transfer window -- 1 MB over a 2-hop 40 ms gateway route "
            "(64 KiB chunks)", rows))
    if args.metrics and experiment.last_outcomes:
        from repro.bench.reporting import format_stats_table
        from repro.core.metrics import summarize
        print()
        print(format_stats_table("per-phase aggregate (all runs)",
                                 summarize(experiment.last_outcomes)))
    _export_obs(obs, args)
    return 0


def cmd_lecture(args: argparse.Namespace) -> int:
    from repro.bench.harness import clone_dispatch_experiment

    obs = _make_obs(args)
    result = clone_dispatch_experiment(room_count=args.rooms,
                                       observability=obs)
    for key, value in result.items():
        print(f"{key:>20}: {value}")
    _export_obs(obs, args)
    return 0


def cmd_simcheck(args: argparse.Namespace) -> int:
    import os

    from repro.simcheck import (
        SABOTAGE_VIOLATIONS,
        SimcheckError,
        check_determinism,
        generate_scenario,
        replay_artifact,
        run_scenario,
        shrink,
        write_artifact,
    )

    if args.replay:
        try:
            report, reproduced = replay_artifact(args.replay)
        except (SimcheckError, OSError) as exc:
            raise SystemExit(f"error: cannot replay artifact: {exc}")
        print(report.summary())
        for violation in report.violations:
            print(f"  {violation}")
        if reproduced:
            print("recorded violation reproduced")
            return 0
        print("recorded violation did NOT reproduce")
        return 1

    if args.city:
        from repro.city import generate_city_scenario as generate_scenario

    failed_seeds = []
    for seed in range(args.seed_start, args.seed_start + args.seeds):
        scenario = generate_scenario(seed)
        if args.sabotage:
            scenario.sabotage = args.sabotage
        try:
            report = run_scenario(scenario)
        except Exception as exc:
            print(f"seed {seed}: runner crashed: {exc!r}")
            failed_seeds.append(seed)
            if not args.keep_going:
                return 1
            continue
        problems = [v.kind for v in report.violations]
        if not args.no_determinism and not problems:
            verdict = check_determinism(scenario)
            if not verdict["deterministic"]:
                print(f"seed {seed}: NON-DETERMINISTIC "
                      f"(digests {verdict['digests']})")
                failed_seeds.append(seed)
                if not args.keep_going:
                    return 1
                continue
        if not problems:
            print(report.summary())
            continue
        failed_seeds.append(seed)
        print(report.summary())
        for violation in report.violations:
            print(f"  {violation}")
        if not args.no_shrink:
            result = shrink(scenario, problems[0])
            print(f"  shrunk to: {result.scenario.describe()} "
                  f"({result.evaluations} evaluations)")
            os.makedirs(args.artifact_dir, exist_ok=True)
            path = os.path.join(args.artifact_dir,
                                f"simcheck-seed{seed}.json")
            write_artifact(path, result, scenario)
            print(f"  repro artifact: {path} "
                  f"(replay: python -m repro simcheck --replay {path})")
        if not args.keep_going:
            return 1
    total = args.seeds
    if failed_seeds:
        print(f"{len(failed_seeds)}/{total} seeds failed: {failed_seeds}")
        return 1
    print(f"all {total} seeds passed "
          f"(invariants clean"
          f"{'' if args.no_determinism else ', determinism verified'})")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.trajectory import (
        SCENARIOS,
        bench_path,
        compare_bench,
        load_bench,
        run_bench,
        write_bench,
    )
    from repro.obs.slo import SLOReport

    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    regressions = 0
    drifts = 0
    for name in names:
        record = run_bench(name, quick=args.quick)
        metrics = record["metrics"]
        print(f"== {name} ({record['mode']}) ==")
        print(f"  events          : {metrics['events']:,}")
        print(f"  events/sec      : {metrics['events_per_sec']:,.0f}")
        print(f"  sim speed       : {metrics['sim_s_per_wall_s']:,.1f} "
              f"sim-s / wall-s")
        if metrics["peak_rss_bytes"] is not None:
            print(f"  peak RSS        : "
                  f"{metrics['peak_rss_bytes'] / 1e6:.1f} MB")
        print(f"  sim digest      : {record['sim_digest'][:16]}...")
        if record["slo"] is not None and args.slo:
            slo = record["slo"]
            print()
            print(SLOReport(
                window_ms=slo["window_ms"],
                sim_time_ms=slo["sim_time_ms"],
                migrations_total=slo["migrations"]["total"],
                migrations_completed=slo["migrations"]["completed"],
                migrations_failed=slo["migrations"]["failed"],
                latency_ms=slo["latency_ms"],
                deadline_total=slo["deadlines"]["total"],
                deadline_misses=slo["deadlines"]["misses"],
                prestage_pushes=slo["prestage"]["pushes"],
                prestage_hits=slo["prestage"]["hits"],
                link_utilization=slo["link_utilization"],
                retries=slo["retries"],
                queue=slo["queue"],
            ).render(f"fleet SLO report ({name})"))
            print()
        if args.check:
            baseline_path = bench_path(name, args.baseline_dir)
            try:
                baseline = load_bench(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"  no usable baseline ({exc}); skipping comparison")
            else:
                comparison = compare_bench(baseline, record,
                                           threshold=args.threshold)
                print(f"  {comparison.summary()}")
                if comparison.digest_drift:
                    drifts += 1
                    # Hard failure: behaviour changed at identical params,
                    # which no machine difference can explain.  Either the
                    # change is intended (re-baseline with
                    # ``python -m repro bench``) or it is a determinism bug.
                    print(f"::error title=bench digest drift::"
                          f"{name}: sim digest changed at identical params "
                          f"-- scenario behaviour drifted; re-baseline if "
                          f"intended")
                if comparison.regressed:
                    regressions += 1
                    # Soft failure: a GitHub Actions warning annotation,
                    # exit code stays 0 (wall clock is machine-relative).
                    print(f"::warning title=bench regression::"
                          f"{name}: events/sec at {comparison.ratio:.0%} "
                          f"of the committed baseline")
        if not args.no_write:
            path = write_bench(record, args.out_dir)
            print(f"  wrote {path}")
    if args.check:
        print(f"{len(names)} scenario(s), {regressions} regression "
              f"warning(s), {drifts} digest drift(s)")
    return 1 if drifts else 0


def cmd_city(args: argparse.Namespace) -> int:
    import json

    from repro.city import CityConfig, CityWorkload

    tier = "smoke" if args.quick else args.tier
    config = CityConfig.for_tier(tier, seed=args.seed)
    if args.spaces is not None:
        config.spaces = args.spaces
    if args.users is not None:
        config.users = args.users
    if args.no_prestage:
        config.prestage = False
    if args.federated:
        config.federated_registry = True
    obs = _make_obs(args)
    print(f"city: running {config.spaces} spaces / {config.users} users "
          f"(seed {config.seed})...", file=sys.stderr)
    result = CityWorkload(config, observability=obs).run(
        check_invariants=args.check_invariants)
    print(result.summary())
    print()
    print(result.slo.render(f"fleet SLO report (city, "
                            f"{result.tier} tier)"))
    for violation in result.invariant_violations:
        print(f"  INVARIANT VIOLATION: {violation}")
    if args.slo_json:
        payload = {
            "format": "repro.city.slo/1",
            "tier": result.tier,
            "seed": config.seed,
            "spaces": result.spaces,
            "users": result.users,
            "legs_submitted": result.legs_submitted,
            "trace_digest": result.trace_digest,
            "fleet_digest": result.fleet_digest,
            "hourly_moves": result.hourly_moves,
            "slo": result.slo.to_dict(),
        }
        with open(args.slo_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"SLO report written to {args.slo_json}", file=sys.stderr)
    _export_obs(obs, args)
    if result.invariant_violations:
        return 1
    return 0 if result.legs_completed > 0 else 1


def cmd_version(args: argparse.Namespace) -> int:
    import repro
    print(f"repro (MDAgent reproduction) {repro.__version__}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MDAgent: agent-based application mobility middleware "
                    "(ICDCSW'07 reproduction)")
    sub = parser.add_subparsers(dest="command")
    quickstart = sub.add_parser("quickstart",
                                help="one follow-me migration with a trace")
    quickstart.add_argument("--size-mb", type=float, default=5.0)
    quickstart.add_argument("--policy", choices=["adaptive", "static"],
                            default="adaptive")
    quickstart.add_argument("--seed", type=int, default=42)
    quickstart.add_argument("--migration-protocol",
                            choices=["direct", "fipa"], default="direct",
                            help="pre-transfer capability negotiation: "
                                 "'direct' (in-process checks) or 'fipa' "
                                 "(propose/accept-proposal ACL exchange)")
    _add_obs_flags(quickstart)
    _add_fault_flags(quickstart)
    quickstart.set_defaults(func=cmd_quickstart)
    sweep = sub.add_parser("sweep", help="reproduce Figs. 8-10")
    _add_obs_flags(sweep)
    _add_fault_flags(sweep)
    sweep.add_argument("--availability", action="store_true",
                       help="also sweep injected link-loss rate vs "
                            "migration success/latency")
    sweep.add_argument("--availability-runs", type=int, default=5,
                       metavar="N", help="runs per loss rate (default 5)")
    sweep.add_argument("--window-sweep", action="store_true",
                       help="also sweep the pipelined transfer window on "
                            "the high-latency 2-hop route")
    sweep.set_defaults(func=cmd_sweep)
    lecture = sub.add_parser("lecture",
                             help="clone-dispatch lecture scenario")
    lecture.add_argument("--rooms", type=int, default=3)
    _add_obs_flags(lecture)
    lecture.set_defaults(func=cmd_lecture)
    simcheck = sub.add_parser(
        "simcheck",
        help="fuzz seeded scenarios under runtime invariant checks")
    simcheck.add_argument("--seeds", type=int, default=25, metavar="N",
                          help="number of seeds to fuzz (default 25)")
    simcheck.add_argument("--seed-start", type=int, default=0, metavar="S",
                          help="first seed (default 0)")
    simcheck.add_argument("--replay", metavar="FILE", default=None,
                          help="replay a JSON repro artifact instead of "
                               "fuzzing; exits 0 iff the recorded "
                               "violation reproduces")
    simcheck.add_argument("--artifact-dir", metavar="DIR", default=".",
                          help="where failure repro artifacts are written "
                               "(default: current directory)")
    simcheck.add_argument("--no-shrink", action="store_true",
                          help="report violations without minimizing them")
    simcheck.add_argument("--no-determinism", action="store_true",
                          help="skip the same-seed double-run digest check")
    simcheck.add_argument("--keep-going", action="store_true",
                          help="fuzz every seed even after a failure")
    simcheck.add_argument("--city", action="store_true",
                          help="fuzz small compiled-city scenarios "
                               "(repro.city.generate_city_scenario) "
                               "instead of the generic generator")
    # Test-only: plant a deliberate defect in every scenario so the
    # checker/shrinker pipeline itself can be exercised end to end.
    simcheck.add_argument("--sabotage", default=None,
                          help=argparse.SUPPRESS)
    simcheck.set_defaults(func=cmd_simcheck)
    bench = sub.add_parser(
        "bench",
        help="run the standing perf scenarios and write BENCH_*.json")
    bench.add_argument("--scenario", default="all",
                       choices=["all", "scale", "transfer_window",
                                "workload_day", "city", "registry"],
                       help="which standing scenario to run (default all)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller parameter sets for CI smoke runs")
    bench.add_argument("--out-dir", metavar="DIR", default=".",
                       help="where BENCH_*.json files are written "
                            "(default: current directory)")
    bench.add_argument("--no-write", action="store_true",
                       help="run and report without writing BENCH files")
    bench.add_argument("--check", action="store_true",
                       help="compare events/sec against the committed "
                            "baselines; prints a warning annotation on "
                            "regression but still exits 0")
    bench.add_argument("--baseline-dir", metavar="DIR", default=".",
                       help="where committed baselines live (default: "
                            "current directory)")
    bench.add_argument("--threshold", type=float, default=0.20,
                       help="relative events/sec drop that counts as a "
                            "regression (default 0.20)")
    bench.add_argument("--slo", action="store_true",
                       help="also print each scenario's fleet SLO report")
    bench.set_defaults(func=cmd_bench)
    city = sub.add_parser(
        "city",
        help="run a city-scale commuter day through the middleware")
    city.add_argument("--seed", type=int, default=11,
                      help="workload seed (default 11); same seed -> "
                           "byte-identical trace digest")
    city.add_argument("--tier", default="quick",
                      choices=["smoke", "quick", "full"],
                      help="scale tier (default quick: 200 spaces / "
                           "2,000 users; full: 2,000 / 50,000)")
    city.add_argument("--spaces", type=int, default=None, metavar="N",
                      help="override the tier's space count")
    city.add_argument("--users", type=int, default=None, metavar="N",
                      help="override the tier's user count")
    city.add_argument("--quick", action="store_true",
                      help="shorthand for --tier smoke (CI smoke runs)")
    city.add_argument("--federated", action="store_true",
                      help="shard the registry per space with gateway "
                           "aggregators instead of one flat center")
    city.add_argument("--no-prestage", action="store_true",
                      help="disable morning-commute component pre-staging")
    city.add_argument("--check-invariants", action="store_true",
                      help="run under the simcheck runtime invariant "
                           "checkers (slower; nonzero exit on violation)")
    city.add_argument("--slo-json", metavar="FILE", default=None,
                      help="also write the SLO report (plus digests) as "
                           "JSON")
    _add_obs_flags(city)
    city.set_defaults(func=cmd_city)
    version = sub.add_parser("version", help="print the version")
    version.set_defaults(func=cmd_version)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
