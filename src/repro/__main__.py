"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``quickstart``      run a single follow-me migration and print the phases
- ``sweep``           run the Fig. 8/9/10 file-size sweep and print tables
- ``lecture``         run the clone-dispatch lecture scenario
- ``version``         print the library version
"""

from __future__ import annotations

import argparse
import sys


def cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import BindingPolicy, Deployment
    from repro.apps import MusicPlayerApp
    from repro.core.trace import DeploymentTracer

    d = Deployment(seed=args.seed)
    d.add_space("lab")
    src = d.add_host("host1", "lab")
    dst = d.add_host("host2", "lab")
    tracer = DeploymentTracer(d)
    app = MusicPlayerApp.build("player", "alice",
                               track_bytes=int(args.size_mb * 1e6))
    src.launch_application(app)
    d.run_all()
    d.loop.advance(10_000.0)
    policy = BindingPolicy(args.policy)
    outcome = src.migrate("player", "host2", policy=policy)
    tracer.watch_outcome(outcome)
    d.run_all()
    print(tracer.timeline())
    print()
    for phase, value in outcome.phases().items():
        print(f"{phase:>8}: {value:8.1f} ms")
    return 0 if outcome.completed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.harness import MigrationExperiment
    from repro.bench.reporting import format_comparison_table, format_phase_table
    from repro.bench.workloads import PAPER_FILE_SIZES_MB
    from repro.core import BindingPolicy

    experiment = MigrationExperiment()
    adaptive = experiment.sweep(PAPER_FILE_SIZES_MB, BindingPolicy.ADAPTIVE)
    static = experiment.sweep(PAPER_FILE_SIZES_MB, BindingPolicy.STATIC)
    print(format_phase_table(
        "Fig. 8 -- adaptive component binding", adaptive))
    print()
    print(format_phase_table(
        "Fig. 9 -- static component binding", static))
    print()
    print(format_comparison_table(
        "Fig. 10 -- comparative total cost", adaptive, static))
    return 0


def cmd_lecture(args: argparse.Namespace) -> int:
    from repro.bench.harness import clone_dispatch_experiment

    result = clone_dispatch_experiment(room_count=args.rooms)
    for key, value in result.items():
        print(f"{key:>20}: {value}")
    return 0


def cmd_version(args: argparse.Namespace) -> int:
    import repro
    print(f"repro (MDAgent reproduction) {repro.__version__}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MDAgent: agent-based application mobility middleware "
                    "(ICDCSW'07 reproduction)")
    sub = parser.add_subparsers(dest="command")
    quickstart = sub.add_parser("quickstart",
                                help="one follow-me migration with a trace")
    quickstart.add_argument("--size-mb", type=float, default=5.0)
    quickstart.add_argument("--policy", choices=["adaptive", "static"],
                            default="adaptive")
    quickstart.add_argument("--seed", type=int, default=42)
    quickstart.set_defaults(func=cmd_quickstart)
    sweep = sub.add_parser("sweep", help="reproduce Figs. 8-10")
    sweep.set_defaults(func=cmd_sweep)
    lecture = sub.add_parser("lecture",
                             help="clone-dispatch lecture scenario")
    lecture.add_argument("--rooms", type=int, default=3)
    lecture.set_defaults(func=cmd_lecture)
    version = sub.add_parser("version", help="print the version")
    version.set_defaults(func=cmd_version)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
