"""Workload parameters: the paper's sweep constants and the city tiers.

This module absorbs the old ``repro.bench.workloads`` stub (which
``repro.bench.workloads`` now re-exports for backward compatibility) and
adds the scale tiers of the city generator -- the knob the roadmap's
"million commuters" arc turns.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The music-file sizes the paper sweeps in Figs. 8-10 (MB).
PAPER_FILE_SIZES_MB = (2.0, 3.0, 4.3, 5.6, 6.5, 7.5)

#: Bandwidths (Mbps) for the crossover ablation (paper testbed = 10).
BANDWIDTH_SWEEP_MBPS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Room fan-out counts for the clone-dispatch ablation.
CLONE_FANOUTS = (1, 2, 4, 8)


def mb(megabytes: float) -> int:
    """Megabytes (decimal, as the paper labels axes) to bytes."""
    return int(megabytes * 1e6)


@dataclass(frozen=True)
class CityTier:
    """One named scale point of the city generator."""

    name: str
    spaces: int
    users: int

    def __str__(self) -> str:
        return f"{self.name} ({self.spaces} spaces / {self.users} users)"


#: The standing scale tiers.  ``smoke`` is the CI --quick smoke point,
#: ``quick`` is the standing heavy-traffic benchmark (BENCH_city.json and
#: the city-smoke CI job), ``full`` is the streaming-runner scale-out
#: target -- too big to materialize a schedule for, which is the point.
CITY_TIERS = {
    "smoke": CityTier("smoke", spaces=40, users=300),
    "quick": CityTier("quick", spaces=200, users=2_000),
    "full": CityTier("full", spaces=2_000, users=50_000),
}
