"""City topology synthesis: thousands of smart spaces in a gateway tree.

The paper's evaluation wires a handful of rooms by hand; the roadmap's
"heavy traffic from millions of users" arc needs the same middleware under
a *city*: homes on thin access links, transit hubs forming the backbone,
offices on metro fiber and meeting rooms hanging off office campuses.
:func:`synthesize` derives that hierarchy deterministically from a target
space count, and :func:`build_deployment` materializes it as a
:class:`~repro.core.middleware.Deployment` with per-tier
:class:`~repro.net.topology.LinkSpec` profiles.

Everything is a pure function of ``(spaces, seed)``: no global RNG, no
ambient state, so two syntheses with the same inputs are byte-identical
-- the property every digest in :mod:`repro.city.population` rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.topology import LinkSpec

#: Space kinds, in synthesis order (hubs first: the registry center and
#: the backbone live there, and hub names must exist before anything can
#: attach to them).
SPACE_KINDS = ("transit", "office", "meeting", "home")

#: Inter-space link profiles per edge tier.  Numbers follow the shape of
#: real metro deployments rather than any one ISP: fat short backbone,
#: decent office fiber, thin last-mile home access.
TIER_LINKS: Dict[str, LinkSpec] = {
    "backbone": LinkSpec(bandwidth_mbps=1000.0, latency_ms=3.0),
    "metro": LinkSpec(bandwidth_mbps=200.0, latency_ms=4.0),
    "campus": LinkSpec(bandwidth_mbps=100.0, latency_ms=2.0),
    "access": LinkSpec(bandwidth_mbps=30.0, latency_ms=12.0),
}

#: Intra-space LAN profile per space kind (the full mesh Topology wires).
LAN_BY_KIND: Dict[str, LinkSpec] = {
    "transit": LinkSpec(bandwidth_mbps=50.0, latency_ms=2.0),
    "office": LinkSpec(bandwidth_mbps=100.0, latency_ms=1.0),
    "meeting": LinkSpec(bandwidth_mbps=54.0, latency_ms=1.0),
    "home": LinkSpec(bandwidth_mbps=25.0, latency_ms=2.0),
}

#: Middleware hosts per space kind.  Offices are dense (hot desks),
#: transit hubs keep a pair of kiosks, homes and meeting rooms one box.
HOSTS_BY_KIND: Dict[str, int] = {
    "transit": 2, "office": 3, "meeting": 1, "home": 1,
}

#: Gateway store-and-forward delay per space kind (hubs switch fast).
GATEWAY_DELAY_MS: Dict[str, float] = {
    "transit": 1.0, "office": 3.0, "meeting": 3.0, "home": 5.0,
}


@dataclass(frozen=True)
class SpaceSpec:
    """One synthesized smart space and its place in the hierarchy."""

    name: str
    kind: str  # one of SPACE_KINDS
    #: Middleware host names inside the space (gateway excluded).
    hosts: Tuple[str, ...]
    gateway: str
    #: The transit hub this space uplinks through (hubs name themselves;
    #: meeting rooms name their parent office's hub).
    hub: str
    #: Meeting rooms only: the office space they hang off.
    parent: str = ""


@dataclass
class CityTopology:
    """The synthesized city: spaces plus the tiered edge list.

    ``edges`` entries are ``(space_a, space_b, tier)`` with ``tier`` a
    :data:`TIER_LINKS` key; order is deterministic and load-bearing for
    trace digests.
    """

    seed: int
    spaces: List[SpaceSpec] = field(default_factory=list)
    edges: List[Tuple[str, str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {s.name: s for s in self.spaces}

    def space(self, name: str) -> SpaceSpec:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def of_kind(self, kind: str) -> List[SpaceSpec]:
        return [s for s in self.spaces if s.kind == kind]

    @property
    def hubs(self) -> List[SpaceSpec]:
        return self.of_kind("transit")

    @property
    def offices(self) -> List[SpaceSpec]:
        return self.of_kind("office")

    @property
    def meetings(self) -> List[SpaceSpec]:
        return self.of_kind("meeting")

    @property
    def homes(self) -> List[SpaceSpec]:
        return self.of_kind("home")

    @property
    def host_count(self) -> int:
        return sum(len(s.hosts) for s in self.spaces)

    def describe(self) -> str:
        return (f"{len(self.spaces)} spaces "
                f"({len(self.hubs)} hubs, {len(self.offices)} offices, "
                f"{len(self.meetings)} meeting rooms, "
                f"{len(self.homes)} homes), {self.host_count} hosts, "
                f"{len(self.edges)} inter-space links")


def composition(spaces: int) -> Dict[str, int]:
    """Split a total space count into per-kind counts.

    Roughly one transit hub per 25 spaces, one office per 5, one meeting
    room per 16; the rest are homes.  Floors keep tiny cities viable
    (>= 2 hubs so the backbone is a real ring, >= 1 of everything else).
    """
    if spaces < 8:
        raise ValueError(f"city needs >= 8 spaces: {spaces}")
    hubs = max(2, spaces // 25)
    offices = max(2, spaces // 5)
    meetings = max(1, spaces // 16)
    homes = spaces - hubs - offices - meetings
    if homes < 1:
        raise ValueError(f"no room left for homes at {spaces} spaces")
    return {"transit": hubs, "office": offices, "meeting": meetings,
            "home": homes}


def synthesize(spaces: int, seed: int = 0) -> CityTopology:
    """Derive the full city hierarchy from ``(spaces, seed)``.

    Structure: transit hubs form a backbone ring (plus a star to hub 0
    when the ring grows past 4, bounding any route to a few hops);
    offices uplink to hubs round-robin over metro fiber; meeting rooms
    hang off offices round-robin over campus links; homes uplink to hubs
    round-robin over access links.
    """
    counts = composition(spaces)
    specs: List[SpaceSpec] = []
    edges: List[Tuple[str, str, str]] = []

    def make(kind: str, name: str, hub: str, parent: str = "") -> SpaceSpec:
        hosts = tuple(f"{name}-h{j}" for j in range(HOSTS_BY_KIND[kind]))
        spec = SpaceSpec(name=name, kind=kind, hosts=hosts,
                         gateway=f"gw-{name}", hub=hub, parent=parent)
        specs.append(spec)
        return spec

    hub_names = [f"hub-{i:02d}" for i in range(counts["transit"])]
    for name in hub_names:
        make("transit", name, hub=name)
    n_hubs = len(hub_names)
    for i in range(n_hubs - 1):
        edges.append((hub_names[i], hub_names[i + 1], "backbone"))
    if n_hubs > 2:
        edges.append((hub_names[-1], hub_names[0], "backbone"))
    if n_hubs > 4:
        # Star chords to hub 0: any hub pair is <= 2 backbone hops.
        for i in range(2, n_hubs - 1):
            edges.append((hub_names[0], hub_names[i], "backbone"))

    office_specs = []
    for i in range(counts["office"]):
        hub = hub_names[i % n_hubs]
        spec = make("office", f"office-{i:03d}", hub=hub)
        office_specs.append(spec)
        edges.append((spec.name, hub, "metro"))

    for i in range(counts["meeting"]):
        parent = office_specs[i % len(office_specs)]
        spec = make("meeting", f"meeting-{i:03d}", hub=parent.hub,
                    parent=parent.name)
        edges.append((spec.name, parent.name, "campus"))

    for i in range(counts["home"]):
        hub = hub_names[i % n_hubs]
        spec = make("home", f"home-{i:04d}", hub=hub)
        edges.append((spec.name, hub, "access"))

    return CityTopology(seed=seed, spaces=specs, edges=edges)


def build_deployment(city: CityTopology, observability=None,
                     config=None, admission_limit: Optional[int] = None,
                     federated: bool = False,
                     registry_telemetry: bool = False):
    """Materialize a synthesized city as a live Deployment.

    The registry center gets a dedicated host in hub 0's space (installed
    before any middleware host, so no kiosk doubles as the fleet's
    directory), every space gets its gateway, and each edge gets its
    tier's link profile.  Returns the deployment; the caller launches
    applications and drives traffic.

    With ``federated`` the flat center becomes a federation placed along
    the city's hierarchy: transit/office/meeting shards live on their own
    gateways, home shards aggregate on their hub's gateway (keeping the
    slow access link off the shard path), and each hub gateway is the
    aggregator for the spaces it serves.
    """
    from repro.core.middleware import Deployment

    d = Deployment(seed=city.seed, observability=observability,
                   config=config)
    if federated:
        d.enable_federated_registry(auto_shards=False)
    if registry_telemetry:
        from repro.registry.registry import enable_registry_telemetry
        enable_registry_telemetry(d.network)
    first = city.spaces[0]
    d.add_space(first.name, lan=LAN_BY_KIND[first.kind])
    d.install_registry(first.name, host_name="registry")
    for spec in city.spaces:
        if spec.name != first.name:
            d.add_space(spec.name, lan=LAN_BY_KIND[spec.kind])
        for host in spec.hosts:
            d.add_host(host, spec.name)
        d.add_gateway(spec.gateway, spec.name,
                      processing_delay_ms=GATEWAY_DELAY_MS[spec.kind])
        if federated:
            fed = d.federation
            if spec.kind == "transit":
                # Hub gateways aggregate: they fan global lookups out and
                # host their homes' shards (transit spaces come first in
                # city.spaces, so every hub gateway exists by the time a
                # home needs it).
                fed.install_aggregator(spec.gateway)
                fed.install_shard(spec.name, spec.gateway)
            elif spec.kind == "home":
                fed.install_shard(spec.name, f"gw-{spec.hub}")
            else:
                fed.install_shard(spec.name, spec.gateway)
            fed.assign_aggregator(spec.name, f"gw-{spec.hub}")
    for space_a, space_b, tier in city.edges:
        d.connect_spaces(space_a, space_b, TIER_LINKS[tier])
    if admission_limit is not None:
        d.enable_migration_scheduler(limit=admission_limit)
    return d
