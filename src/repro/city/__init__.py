"""repro.city: city-scale population and workload generation.

The paper's evaluation stops at a handful of rooms; the roadmap's north
star is "heavy traffic from millions of users".  This package closes
part of that gap:

- :mod:`repro.city.topology` -- seeded synthesis of thousands of smart
  spaces in a gateway hierarchy (homes / transit hubs / offices /
  meeting rooms) with per-tier link profiles;
- :mod:`repro.city.population` -- synthetic commuters with daily
  mobility traces, rush-hour arrival curves and per-user app mixes
  (same seed -> byte-identical trace digest);
- :mod:`repro.city.workload` -- the streaming fleet runner: trace ->
  migration legs through the MigrationScheduler + PrestagingService in
  sim-time order, one pending event per user, never a materialized
  schedule; fleet SLOs via :mod:`repro.obs.slo`;
- :mod:`repro.city.scenario_io` -- compile bounded city slices to
  :mod:`repro.simcheck` scenarios so the shrinker can minimize
  city-scale failures into replayable artifacts.

Entry points: ``python -m repro city`` and the ``city`` scenario of
``python -m repro bench``.
"""

from repro.city.params import (
    BANDWIDTH_SWEEP_MBPS,
    CITY_TIERS,
    CLONE_FANOUTS,
    PAPER_FILE_SIZES_MB,
    CityTier,
    mb,
)
from repro.city.population import (
    DAY_MS,
    HOUR_MS,
    Population,
    TraceEvent,
    UserApp,
    UserSpec,
)
from repro.city.scenario_io import (
    compile_scenario,
    generate_city_scenario,
    minimize_city_failure,
)
from repro.city.topology import (
    CityTopology,
    SpaceSpec,
    build_deployment,
    composition,
    synthesize,
)
from repro.city.workload import CityConfig, CityResult, CityWorkload

__all__ = [
    "BANDWIDTH_SWEEP_MBPS",
    "CITY_TIERS",
    "CLONE_FANOUTS",
    "PAPER_FILE_SIZES_MB",
    "CityTier",
    "mb",
    "DAY_MS",
    "HOUR_MS",
    "Population",
    "TraceEvent",
    "UserApp",
    "UserSpec",
    "compile_scenario",
    "generate_city_scenario",
    "minimize_city_failure",
    "CityTopology",
    "SpaceSpec",
    "build_deployment",
    "composition",
    "synthesize",
    "CityConfig",
    "CityResult",
    "CityWorkload",
]
