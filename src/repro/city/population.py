"""Synthetic population: daily mobility traces with rush-hour bursts.

Each user follows the commuter arc the paper motivates -- leave home,
ride through a transit hub, work at an office, maybe a meeting, come
home -- with departure times drawn from rush-hour Gaussians.  The trace
is **seeded and order-independent**: every user gets a private
``random.Random`` keyed by ``(seed, user)``, so generating user 40_000's
day never depends on having generated the 39_999 before it.  That is
what lets the streaming runner hold one pending event per user instead
of a city-wide sorted schedule, while :func:`trace_digest` can still
hash the canonical merged order.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.city.topology import CityTopology

HOUR_MS = 3_600_000.0
MINUTE_MS = 60_000.0
DAY_MS = 24 * HOUR_MS

#: App kinds users carry, with draw weights and payload menus (bytes).
#: Kinds match ``repro.simcheck.scenario.APP_KINDS`` / ``repro.apps``.
APP_MENU: Tuple[Tuple[str, int, Tuple[int, ...]], ...] = (
    ("messenger", 4, (8_000, 16_000)),
    ("editor", 3, (24_000, 64_000, 128_000)),
    ("music", 2, (128_000, 256_000, 512_000)),
    ("slideshow", 1, (96_000, 192_000)),
)

#: Probability a user carries a second application.
SECOND_APP_P = 0.2


@dataclass(frozen=True)
class TraceEvent:
    """One user movement: at ``at_ms`` the user enters ``to_space``.

    ``dwell`` marks stays long enough for follow-me apps to chase; hops
    *through* a transit hub are not dwells -- nobody migrates a slideshow
    onto a platform kiosk for a twenty-minute ride.
    """

    at_ms: float
    user: str
    from_space: str
    to_space: str
    phase: str  # commute-out | arrive-office | to-meeting | from-meeting
    #         | commute-home | arrive-home
    dwell: bool

    def line(self) -> str:
        """Canonical digest line (stable wire form of the event)."""
        return (f"{self.at_ms:.1f}|{self.user}|{self.from_space}|"
                f"{self.to_space}|{self.phase}|{int(self.dwell)}")


@dataclass(frozen=True)
class UserApp:
    """One application a user carries through the day."""

    name: str
    kind: str
    payload_bytes: int


@dataclass(frozen=True)
class UserSpec:
    """One synthetic commuter: placements plus their app mix."""

    name: str
    index: int
    home: str
    hub: str
    office: str
    meeting: Optional[str]
    apps: Tuple[UserApp, ...]


class Population:
    """Lazy, seeded commuter population over a synthesized city."""

    def __init__(self, city: CityTopology, users: int, seed: int = 0,
                 meeting_probability: float = 0.5):
        if users < 1:
            raise ValueError(f"population needs >= 1 user: {users}")
        if not 0.0 <= meeting_probability <= 1.0:
            raise ValueError(
                f"meeting probability outside [0, 1]: {meeting_probability}")
        self.city = city
        self.size = users
        self.seed = seed
        self.meeting_probability = meeting_probability
        self._homes = city.homes
        self._offices = city.offices
        self._meetings = city.meetings

    # -- per-user derivation (order-independent) --------------------------

    def _rng(self, user_name: str, stream: str) -> random.Random:
        return random.Random(f"repro.city/{self.seed}/{user_name}/{stream}")

    def user(self, index: int) -> UserSpec:
        """Derive commuter ``index`` -- same result regardless of call
        order or what else was generated before."""
        if not 0 <= index < self.size:
            raise IndexError(f"user index out of range: {index}")
        name = f"u{index:05d}"
        rng = self._rng(name, "spec")
        home = self._homes[index % len(self._homes)]
        office = self._offices[rng.randrange(len(self._offices))]
        meeting = None
        if self._meetings and rng.random() < self.meeting_probability:
            meeting = self._meetings[rng.randrange(len(self._meetings))].name
        n_apps = 2 if rng.random() < SECOND_APP_P else 1
        kinds = [k for k, weight, _ in APP_MENU for _ in range(weight)]
        apps = []
        chosen: List[str] = []
        while len(apps) < n_apps:
            kind = rng.choice(kinds)
            if kind in chosen:
                continue
            chosen.append(kind)
            menu = next(m for k, _, m in APP_MENU if k == kind)
            apps.append(UserApp(name=f"{name}-{kind}", kind=kind,
                                payload_bytes=rng.choice(menu)))
        return UserSpec(name=name, index=index, home=home.name,
                        hub=home.hub, office=office.name, meeting=meeting,
                        apps=tuple(apps))

    def users(self) -> Iterator[UserSpec]:
        for index in range(self.size):
            yield self.user(index)

    # -- the day ----------------------------------------------------------

    def day_plan(self, user: UserSpec) -> List[TraceEvent]:
        """The user's full day as a strictly ordered event list.

        Times are rush-hour Gaussians (depart ~8:30, return ~17:30) with
        clipping, then forced strictly monotone with a one-minute floor
        between consecutive moves; all times are quantized to 0.1 ms so
        the digest is platform-stable.
        """
        rng = self._rng(user.name, "day")
        office_hub = self.city.space(user.office).hub

        def gauss(mean_h: float, sigma_h: float, lo_h: float,
                  hi_h: float) -> float:
            return min(max(rng.gauss(mean_h, sigma_h), lo_h), hi_h) * HOUR_MS

        depart = gauss(8.5, 0.6, 5.5, 11.0)
        transit_out = min(max(rng.gauss(25.0, 8.0), 6.0), 70.0) * MINUTE_MS
        arrive_office = depart + transit_out

        events = [
            TraceEvent(0.0, user.name, user.home, user.hub,
                       "commute-out", dwell=False),
            TraceEvent(0.0, user.name, user.hub, user.office,
                       "arrive-office", dwell=True),
        ]
        times = [depart, arrive_office]

        last = arrive_office
        if user.meeting is not None:
            start = rng.choice((10.0, 14.0)) * HOUR_MS \
                + rng.gauss(0.0, 20.0) * MINUTE_MS
            start = max(start, arrive_office + 30.0 * MINUTE_MS)
            length = rng.uniform(40.0, 90.0) * MINUTE_MS
            events.append(TraceEvent(0.0, user.name, user.office,
                                     user.meeting, "to-meeting", dwell=True))
            events.append(TraceEvent(0.0, user.name, user.meeting,
                                     user.office, "from-meeting",
                                     dwell=True))
            times.extend([start, start + length])
            last = start + length

        depart_office = gauss(17.5, 0.8, 14.0, 21.5)
        depart_office = max(depart_office, last + 45.0 * MINUTE_MS)
        transit_home = min(max(rng.gauss(25.0, 8.0), 6.0), 70.0) * MINUTE_MS
        events.append(TraceEvent(0.0, user.name, user.office, office_hub,
                                 "commute-home", dwell=False))
        events.append(TraceEvent(0.0, user.name, office_hub, user.home,
                                 "arrive-home", dwell=True))
        times.extend([depart_office, depart_office + transit_home])

        # Strict monotonicity with a floor, then 0.1 ms quantization.
        out: List[TraceEvent] = []
        previous = -MINUTE_MS
        for event, at in zip(events, times):
            at = round(max(at, previous + MINUTE_MS), 1)
            previous = at
            out.append(TraceEvent(at, event.user, event.from_space,
                                  event.to_space, event.phase, event.dwell))
        return out

    def iter_user_events(self, user: UserSpec) -> Iterator[TraceEvent]:
        return iter(self.day_plan(user))

    def iter_trace(self, max_users: Optional[int] = None
                   ) -> Iterator[TraceEvent]:
        """The city's whole day in canonical global order.

        A streaming k-way merge over per-user day plans keyed by
        ``(at_ms, user)`` -- O(users) memory, never a materialized
        schedule.  This order defines :func:`trace_digest`.
        """
        count = self.size if max_users is None else min(max_users, self.size)
        streams: Iterable[Iterator[Tuple[Tuple[float, str], TraceEvent]]] = (
            (((e.at_ms, e.user), e) for e in self.day_plan(self.user(i)))
            for i in range(count))
        for _key, event in heapq.merge(*streams):
            yield event

    def trace_digest(self, max_users: Optional[int] = None) -> str:
        """SHA-256 over the canonical trace -- same seed, same digest."""
        digest = hashlib.sha256()
        for event in self.iter_trace(max_users=max_users):
            digest.update(event.line().encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def hourly_histogram(self, max_users: Optional[int] = None) -> List[int]:
        """Moves per hour-of-day -- the rush-hour curve, 24 bins."""
        bins = [0] * 24
        for event in self.iter_trace(max_users=max_users):
            bins[min(23, int(event.at_ms // HOUR_MS))] += 1
        return bins
