"""The streaming fleet runner: a city's day through the middleware.

:class:`CityWorkload` synthesizes a city, launches every commuter's apps
at home, then plays the population's mobility trace in sim-time order by
keeping exactly **one pending timer per user** -- each fired move
executes, then schedules that user's next move from their lazy day-plan
iterator.  The full leg list is never materialized: 50,000 users cost
50,000 pending events, not 170,000 sorted legs, which is what lets the
``full`` tier exist at all.

Migrations flow through the deployment's
:class:`~repro.core.middleware.MigrationScheduler` (admission control,
per-destination serialization, EDF ordering) and morning commutes tip the
:class:`~repro.core.prestage.PrestagingService` off through its explicit
placement fast path, so office arrivals find components pre-staged.  The
run deliberately avoids ``announce_location``: a fused location event
fans out to every middleware's context bridge, which is O(hosts) ACL
traffic per move -- fine for a building, quadratic misery for a city.

Fleet SLOs come from :class:`~repro.obs.slo.SLOAggregator` over the
scheduler's request ledger: migration p50/p95/p99, deadline-miss rate,
prestage hit rate, per-class link utilization.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.city.params import CITY_TIERS
from repro.city.population import HOUR_MS, Population, TraceEvent, UserSpec
from repro.city.topology import CityTopology, build_deployment, synthesize


@dataclass
class CityConfig:
    """Everything one city run depends on (plain data, seeded)."""

    seed: int = 11
    spaces: int = 200
    users: int = 2_000
    #: Scheduler admission limit -- concurrent migrations fleet-wide.
    admission_limit: int = 32
    #: Soft deadline every leg carries (None = no deadlines).
    deadline_ms: Optional[float] = 180_000.0
    #: Pre-stage office components during the morning commute.
    prestage: bool = True
    #: Replace the flat registry center with per-space shards and
    #: gateway aggregators (see :mod:`repro.registry.federation`).
    federated_registry: bool = False
    #: Opt into registry hook events + metrics (lookup latency, message
    #: counts); off by default to keep trace digests byte-stable.
    registry_telemetry: bool = False
    meeting_probability: float = 0.5
    #: Event budget for draining the day (full tier needs tens of
    #: millions; the kernel raises SimulationError beyond this).
    max_events: int = 50_000_000

    @classmethod
    def for_tier(cls, tier: str, seed: int = 11, **overrides) -> "CityConfig":
        """Config at a named scale tier (see ``repro.city.params``)."""
        try:
            point = CITY_TIERS[tier]
        except KeyError:
            raise ValueError(
                f"unknown city tier {tier!r} "
                f"(have: {', '.join(CITY_TIERS)})") from None
        return cls(seed=seed, spaces=point.spaces, users=point.users,
                   **overrides)

    def tier_name(self) -> str:
        for name, point in CITY_TIERS.items():
            if (point.spaces, point.users) == (self.spaces, self.users):
                return name
        return "custom"


@dataclass
class CityResult:
    """What one simulated day produced."""

    tier: str
    spaces: int
    hosts: int
    users: int
    apps: int
    moves: int
    legs_submitted: int
    legs_completed: int
    legs_failed: int
    legs_rejected: int
    #: Legs re-submitted because the user moved on mid-migration.
    follow_ups: int
    prestage_pushes: int
    prestage_hits: int
    hourly_moves: List[int]
    sim_makespan_ms: float
    events_processed: int
    #: Canonical population-trace digest (pre-sim, pure generator).
    trace_digest: str
    #: Digest over the runner's own leg ledger (post-sim facts).
    fleet_digest: str
    slo: object = None  # SLOReport
    invariant_violations: List[object] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"city: {self.spaces} spaces / {self.hosts} hosts / "
            f"{self.users} users / {self.apps} apps ({self.tier} tier)",
            f"moves: {self.moves}  legs: {self.legs_submitted} submitted, "
            f"{self.legs_completed} completed, {self.legs_failed} failed, "
            f"{self.legs_rejected} rejected, {self.follow_ups} follow-ups",
            f"prestage: {self.prestage_pushes} pushes, "
            f"{self.prestage_hits} hits",
            f"sim day: {self.sim_makespan_ms / HOUR_MS:.1f} h in "
            f"{self.events_processed} events",
            f"trace digest: {self.trace_digest[:16]}  "
            f"fleet digest: {self.fleet_digest[:16]}",
        ]
        rush = max(range(24), key=lambda h: self.hourly_moves[h])
        lines.append(f"rush hour: {rush:02d}:00 with "
                     f"{self.hourly_moves[rush]} moves")
        return "\n".join(lines)


class CityWorkload:
    """Builds a city deployment and streams one day of commuting through
    it.  Construct, then :meth:`run` exactly once."""

    def __init__(self, config: CityConfig, observability=None):
        self.config = config
        self.observability = observability
        self.city: Optional[CityTopology] = None
        self.deployment = None
        self.population: Optional[Population] = None
        #: app name -> host it currently runs on (runner's own tracking;
        #: updated from scheduler completions).
        self.app_host: Dict[str, str] = {}
        self._app_user: Dict[str, UserSpec] = {}
        #: app name -> desired space while a leg is in flight.
        self._in_flight: Dict[str, str] = {}
        self._retarget: Dict[str, str] = {}
        self._users: List[UserSpec] = []
        self.moves = 0
        self.follow_ups = 0
        self.hourly_moves = [0] * 24
        self._fleet_digest = hashlib.sha256()
        self._built = False
        self._ran = False

    # -- construction ------------------------------------------------------

    def build(self):
        """Synthesize the city, build the deployment, launch every app at
        its owner's home.  Idempotent."""
        if self._built:
            return self.deployment
        from repro.simcheck.scenario import AppSpec, build_application

        config = self.config
        self.city = synthesize(config.spaces, seed=config.seed)
        self.deployment = build_deployment(
            self.city, observability=self.observability,
            admission_limit=config.admission_limit,
            federated=config.federated_registry,
            registry_telemetry=config.registry_telemetry)
        if config.prestage:
            self.deployment.enable_prestaging()
        self.population = Population(
            self.city, config.users, seed=config.seed,
            meeting_probability=config.meeting_probability)
        for user in self.population.users():
            self._users.append(user)
            home_hosts = self.city.space(user.home).hosts
            host = home_hosts[user.index % len(home_hosts)]
            for user_app in user.apps:
                spec = AppSpec(name=user_app.name, kind=user_app.kind,
                               owner=user.name,
                               payload_bytes=user_app.payload_bytes,
                               launch_host=host)
                app = build_application(spec)
                self.deployment.middleware(host).launch_application(app)
                self.app_host[user_app.name] = host
                self._app_user[user_app.name] = user
        self._built = True
        return self.deployment

    # -- placement helpers -------------------------------------------------

    def _host_in(self, user: UserSpec, space: str) -> str:
        hosts = self.city.space(space).hosts
        return hosts[user.index % len(hosts)]

    def _space_of_app(self, app_name: str) -> str:
        return self.deployment.topology.space_of(self.app_host[app_name])

    # -- the streaming day -------------------------------------------------

    def _schedule_next(self, user: UserSpec,
                       events: Iterator[TraceEvent], t0: float) -> None:
        event = next(events, None)
        if event is None:
            return
        self.deployment.loop.call_at(
            t0 + event.at_ms, self._fire, user, event, events, t0)

    def _fire(self, user: UserSpec, event: TraceEvent,
              events: Iterator[TraceEvent], t0: float) -> None:
        self.moves += 1
        self.hourly_moves[min(23, int(event.at_ms // HOUR_MS))] += 1
        if event.dwell:
            for user_app in user.apps:
                self._follow(user, user_app.name, event.to_space)
        elif self.config.prestage and event.phase == "commute-out":
            # The commuter just boarded: their day's destination is the
            # office, so push components ahead over the morning's idle
            # wire.  The explicit placements skip the fleet scan.
            service = self.deployment.prestaging
            placements = []
            for user_app in user.apps:
                if user_app.name in self._in_flight:
                    continue
                middleware = self.deployment.middleware(
                    self.app_host[user_app.name])
                placements.append(
                    (middleware, middleware.applications[user_app.name]))
            if placements:
                service.stage(user.name, user.office, placements=placements)
        self._schedule_next(user, events, t0)

    def _follow(self, user: UserSpec, app_name: str, space: str) -> None:
        if app_name in self._in_flight:
            # Leg in progress; remember the newest target and re-submit
            # from the completion callback.
            if self._in_flight[app_name] != space:
                self._retarget[app_name] = space
            return
        if self._space_of_app(app_name) == space:
            return
        source = self.app_host[app_name]
        destination = self._host_in(user, space)
        self._in_flight[app_name] = space
        self.deployment.scheduler.submit(
            source, app_name, destination,
            deadline_ms=self.config.deadline_ms,
            on_done=self._on_leg_done)

    def _on_leg_done(self, request) -> None:
        app_name = request.app_name
        if request.state == "done" and request.outcome is not None \
                and request.outcome.completed:
            self.app_host[app_name] = request.destination
        self._fleet_digest.update(
            (f"{request.seq}|{app_name}|{request.source}|"
             f"{request.destination}|{request.state}|"
             f"{request.queued_at:.1f}\n").encode("ascii"))
        self._in_flight.pop(app_name, None)
        desired = self._retarget.pop(app_name, None)
        if desired is not None and self._space_of_app(app_name) != desired:
            self.follow_ups += 1
            self._follow(self._app_user[app_name], app_name, desired)

    # -- driving -----------------------------------------------------------

    def run(self, check_invariants: bool = False) -> CityResult:
        """Play the whole day and aggregate fleet SLOs.

        ``check_invariants`` installs the :mod:`repro.simcheck` runtime
        checkers (conservation, byte accounting, clock monotonicity) over
        the run -- slower, but any violation lands in
        ``result.invariant_violations`` ready for scenario compilation
        and shrinking (see :mod:`repro.city.scenario_io`).
        """
        if self._ran:
            raise RuntimeError("CityWorkload.run() already consumed")
        self._ran = True
        if check_invariants and self.observability is None \
                and not self._built:
            # The checkers hook the obs stream; give them a hub to hook.
            from repro.obs import Observability
            self.observability = Observability(trace=False)
        self.build()
        d = self.deployment
        checker = None
        if check_invariants:
            from repro.simcheck.invariants import InvariantChecker
            checker = InvariantChecker(d).install()
        # Settle launches (and checker registration needs live apps).
        d.run_all(max_events=self.config.max_events)
        if checker is not None:
            for _host, app in d.application_instances():
                checker.expect_application(app)
        t0 = d.loop.now
        for user in self._users:
            self._schedule_next(
                user, self.population.iter_user_events(user), t0)
        d.run_all(max_events=self.config.max_events)
        makespan = d.loop.now - t0

        scheduler = d.scheduler
        requests = scheduler.requests
        completed = sum(
            1 for r in requests
            if r.outcome is not None and r.outcome.completed)
        failed = sum(
            1 for r in requests
            if r.state == "done" and (r.outcome is None
                                      or not r.outcome.completed))
        violations = []
        if checker is not None:
            violations = list(checker.check_quiescent())

        from repro.obs.slo import SLOAggregator
        slo = SLOAggregator(d, window_ms=makespan or None).report()
        service = d.prestaging
        return CityResult(
            tier=self.config.tier_name(),
            spaces=len(self.city.spaces),
            hosts=self.city.host_count,
            users=len(self._users),
            apps=len(self.app_host),
            moves=self.moves,
            legs_submitted=len(requests),
            legs_completed=completed,
            legs_failed=failed,
            legs_rejected=scheduler.rejected,
            follow_ups=self.follow_ups,
            prestage_pushes=(service.prestages_started if service else 0),
            prestage_hits=(service.hits if service else 0),
            hourly_moves=list(self.hourly_moves),
            sim_makespan_ms=makespan,
            events_processed=d.loop.processed,
            trace_digest=self.population.trace_digest(),
            fleet_digest=self._fleet_digest.hexdigest(),
            slo=slo,
            invariant_violations=violations,
        )
