"""City <-> simcheck Scenario interop: compile, fuzz, minimize.

A city workload is too big to shrink directly -- the shrinker re-runs a
candidate per reduction, and a 2,000-space day is minutes per run.  The
bridge is :func:`compile_scenario`: it cuts a bounded, deterministic
slice of the city (a few commuters, their spaces, their dwell legs) down
to a plain :class:`~repro.simcheck.scenario.Scenario`, which round-trips
through the scenario JSON wire format and therefore through everything
built on it -- the invariant-checking runner, the greedy shrinker and
replayable repro artifacts.

The compiled slice degrades link specs to the simcheck defaults (the
scenario format carries no per-tier profiles); that is fine because the
runtime invariants -- conservation, byte accounting, clock monotonicity
-- do not depend on bandwidth numbers.

:func:`generate_city_scenario` is the fuzz entry point
(``python -m repro simcheck --city``): one integer seed -> one small
compiled city, same determinism contract as
:func:`repro.simcheck.scenario.generate_scenario`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.city.population import Population
from repro.city.topology import CityTopology, synthesize
from repro.simcheck.scenario import AppSpec, HostSpec, MigrationLeg, Scenario

#: Sequential-replay pause cap: the runner advances sim time by each
#: leg's pause, so commute gaps are compressed from hours to seconds.
MAX_PAUSE_MS = 5_000.0
MIN_PAUSE_MS = 20.0


def _closure(city: CityTopology, seeds: Set[str]) -> List[str]:
    """Expand a space set with every uplink parent plus all hubs, so the
    compiled sub-city stays connected (hub ring + stars survive intact)."""
    included = set(seeds)
    for spec in list(map(city.space, seeds)):
        included.add(spec.hub)
        if spec.parent:
            included.add(spec.parent)
            included.add(city.space(spec.parent).hub)
    included.update(h.name for h in city.hubs)
    # Deterministic order: city synthesis order.
    return [s.name for s in city.spaces if s.name in included]


def compile_scenario(config, max_users: int = 6,
                     max_legs: Optional[int] = 12,
                     sabotage: str = "") -> Scenario:
    """Compile a bounded slice of a city workload into a Scenario.

    ``config`` is a :class:`~repro.city.workload.CityConfig` (anything
    with ``seed``/``spaces``/``users``/``meeting_probability`` works).
    The slice takes the first ``max_users`` commuters, their reachable
    spaces, and up to ``max_legs`` of their dwell moves -- the exact legs
    the streaming runner would submit, with the same destination-host
    pick, so a violation found at city scale recompiles to the same
    migration pattern in miniature.
    """
    city = synthesize(config.spaces, seed=config.seed)
    population = Population(
        city, config.users, seed=config.seed,
        meeting_probability=config.meeting_probability)
    count = min(max_users, population.size)
    users = [population.user(i) for i in range(count)]

    seeds: Set[str] = set()
    for user in users:
        seeds.add(user.home)
        seeds.add(user.office)
        if user.meeting is not None:
            seeds.add(user.meeting)
    spaces = _closure(city, seeds)
    included = set(spaces)

    hosts: List[HostSpec] = []
    gateways: Dict[str, str] = {}
    for name in spaces:
        spec = city.space(name)
        gateways[name] = spec.gateway
        for host in spec.hosts:
            hosts.append(HostSpec(name=host, space=name))
    space_links: List[Tuple[str, str]] = [
        (a, b) for a, b, _tier in city.edges
        if a in included and b in included]

    def host_for(user, space: str) -> str:
        names = city.space(space).hosts
        return names[user.index % len(names)]

    apps: List[AppSpec] = []
    for user in users:
        for user_app in user.apps:
            apps.append(AppSpec(
                name=user_app.name, kind=user_app.kind, owner=user.name,
                payload_bytes=user_app.payload_bytes,
                launch_host=host_for(user, user.home)))

    by_name = {user.name: user for user in users}
    legs: List[MigrationLeg] = []
    previous_at = 0.0
    for event in population.iter_trace(max_users=count):
        if max_legs is not None and len(legs) >= max_legs:
            break
        if not event.dwell:
            continue
        user = by_name[event.user]
        pause = min(max(event.at_ms - previous_at, MIN_PAUSE_MS),
                    MAX_PAUSE_MS)
        previous_at = event.at_ms
        for user_app in user.apps:
            if max_legs is not None and len(legs) >= max_legs:
                break
            legs.append(MigrationLeg(
                app_name=user_app.name,
                destination=host_for(user, event.to_space),
                pause_before_ms=round(pause, 1)))
            pause = MIN_PAUSE_MS  # siblings move back-to-back

    return Scenario(
        seed=config.seed, spaces=spaces, gateways=gateways,
        space_links=space_links, hosts=hosts, apps=apps, legs=legs,
        warmup_ms=500.0, sabotage=sabotage).validate()


def generate_city_scenario(seed: int, spaces: int = 12, users: int = 5,
                           max_legs: int = 8) -> Scenario:
    """One integer seed -> one small compiled city (fuzzing entry point).

    Mirrors :func:`repro.simcheck.scenario.generate_scenario`: local RNG
    only, so the same seed always yields the same scenario.
    """
    from repro.city.workload import CityConfig

    config = CityConfig(seed=seed, spaces=spaces, users=users)
    return compile_scenario(config, max_users=users, max_legs=max_legs)


def minimize_city_failure(config, violation_kind: str,
                          artifact_path: str, max_users: int = 6,
                          max_legs: int = 10, sabotage: str = "",
                          budget: int = 80):
    """Compile a city slice, shrink it against ``violation_kind``, and
    write a replayable repro artifact.

    This is the city-scale failure workflow: an invariant violation seen
    by :meth:`CityWorkload.run(check_invariants=True)
    <repro.city.workload.CityWorkload.run>` recompiles to a bounded
    scenario here, the simcheck shrinker minimizes it, and the artifact
    replays via ``python -m repro simcheck --replay``.  Returns the
    :class:`~repro.simcheck.shrink.ShrinkResult`.
    """
    from repro.simcheck.shrink import shrink, write_artifact

    scenario = compile_scenario(config, max_users=max_users,
                                max_legs=max_legs, sabotage=sabotage)
    result = shrink(scenario, violation_kind, budget=budget)
    write_artifact(artifact_path, result, scenario)
    return result
