"""Experiment harness reproducing the paper's §5 evaluation setup.

The paper's testbed: two PCs (P4 1.7 GHz / 256 MB and PM 1.6 GHz / 512 MB)
on 10 Mbps Ethernet; "the destination host contains the application user
interface but no music data nor application logic"; music files of
2.0-7.5 MB; clocks not synchronized (hence the Fig. 7 round-trip trick).

:func:`build_paper_testbed` recreates that deployment;
:class:`MigrationExperiment` runs follow-me migrations across it and
returns per-phase timings, sweeping file size and binding policy exactly as
Figs. 8-10 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Optional

from repro.apps.music_player import MusicPlayerApp
from repro.apps.slideshow import SlideShowApp
from repro.core import (
    BindingPolicy,
    Deployment,
    DeviceProfile,
    MigrationKind,
    MigrationOutcome,
)
from repro.core.components import LogicComponent, PresentationComponent
from repro.core.middleware import MiddlewareConfig
from repro.net.clock import round_trip_cost
from repro.net.topology import LinkSpec


@dataclass
class TestbedConfig:
    """Parameters of the two-host testbed."""

    __test__ = False  # not a pytest test class despite the name

    bandwidth_mbps: float = 10.0
    latency_ms: float = 1.0
    #: Per-message uniform latency jitter; nonzero makes repeated runs
    #: vary (use with ``sweep(..., repeats=N)`` for error bars).
    jitter_ms: float = 0.0
    #: P4 1.7 GHz, 256 MB (source).
    source_cpu_factor: float = 1.0
    #: PM 1.6 GHz, 512 MB (destination; slightly slower clock).
    dest_cpu_factor: float = 1.06
    #: Destination clocks are NOT synchronized with the source.
    dest_skew_ms: float = -2_000.0
    #: What the destination already has installed (paper: UI only).
    dest_has_ui: bool = True
    dest_has_logic: bool = False
    dest_has_data: bool = False
    gateway: bool = False
    gateway_delay_ms: float = 5.0
    seed: int = 7
    middleware: Optional[MiddlewareConfig] = None


def build_paper_testbed(config: Optional[TestbedConfig] = None,
                        app_name: str = "player",
                        observability=None,
                        faults=None):
    """Two hosts, one (or two gatewayed) space(s), partial app at dest.

    Returns ``(deployment, source_middleware, destination_middleware)``.
    Pass a :class:`repro.faults.FaultConfig` as ``faults`` to run the
    testbed under injected failures.
    """
    config = config if config is not None else TestbedConfig()
    lan = LinkSpec(bandwidth_mbps=config.bandwidth_mbps,
                   latency_ms=config.latency_ms,
                   jitter_ms=config.jitter_ms)
    d = Deployment(seed=config.seed, config=config.middleware,
                   observability=observability, faults=faults)
    d.add_space("lab-a", lan=lan)
    source = d.add_host(
        "host1", "lab-a",
        profile=DeviceProfile("host1", cpu_factor=config.source_cpu_factor))
    if config.gateway:
        d.add_space("lab-b", lan=lan)
        destination = d.add_host(
            "host2", "lab-b",
            profile=DeviceProfile("host2",
                                  cpu_factor=config.dest_cpu_factor),
            skew_ms=config.dest_skew_ms)
        d.add_gateway("gw-a", "lab-a", config.gateway_delay_ms)
        d.add_gateway("gw-b", "lab-b", config.gateway_delay_ms)
        d.connect_spaces("lab-a", "lab-b", lan)
    else:
        destination = d.add_host(
            "host2", "lab-a",
            profile=DeviceProfile("host2",
                                  cpu_factor=config.dest_cpu_factor),
            skew_ms=config.dest_skew_ms)
    _preinstall_partial(destination, config, app_name)
    return d, source, destination


def _preinstall_partial(destination, config: TestbedConfig,
                        app_name: str) -> None:
    """Install at the destination whatever the scenario says it has."""
    if not (config.dest_has_ui or config.dest_has_logic
            or config.dest_has_data):
        return
    partial = MusicPlayerApp(app_name, "alice")
    if config.dest_has_ui:
        partial.add_component(PresentationComponent("player-ui", 250_000))
    if config.dest_has_logic:
        partial.add_component(LogicComponent("codec", 150_000))
    if config.dest_has_data:
        from repro.apps.media import make_track
        partial.add_component(make_track("track-01", 1))
    destination.install_application(partial)


@dataclass
class SweepRow:
    """One point of a Fig. 8/9-style sweep (mean over repeats)."""

    size_mb: float
    policy: str
    suspend_ms: float
    migrate_ms: float
    resume_ms: float
    total_ms: float
    bytes_transferred: int
    repeats: int = 1


class MigrationExperiment:
    """Runs follow-me migrations across fresh paper testbeds.

    Pass an :class:`repro.obs.Observability` hub to trace every run; each
    ``run_once`` becomes a tracer *run* (a Chrome-trace process) labelled
    with the size/policy/kind of that migration.
    """

    def __init__(self, config: Optional[TestbedConfig] = None,
                 observability=None, faults=None):
        self.config = config if config is not None else TestbedConfig()
        self.observability = observability
        #: Optional :class:`repro.faults.FaultConfig` applied to every run.
        self.faults = faults
        self.last_outcomes: List[MigrationOutcome] = []

    def run_once(self, file_size_bytes: int,
                 policy: BindingPolicy = BindingPolicy.ADAPTIVE,
                 kind: MigrationKind = MigrationKind.FOLLOW_ME,
                 seed_offset: int = 0,
                 warmup_ms: float = 1_000.0) -> MigrationOutcome:
        """One migration on a fresh deterministic testbed.

        Without faults a failed migration raises; under a fault config
        failures are expected, so the (failed) outcome is returned for the
        caller to tally.
        """
        config = TestbedConfig(**{**self.config.__dict__,
                                  "seed": self.config.seed + seed_offset})
        obs = self.observability
        if obs is not None and obs.enabled:
            obs.begin_run(f"{file_size_bytes / 1e6:g}MB/{policy.value}/"
                          f"{kind.value}#{seed_offset}")
        d, source, destination = build_paper_testbed(
            config, observability=obs, faults=self.faults)
        app = MusicPlayerApp.build("player", "alice",
                                   track_bytes=file_size_bytes)
        source.launch_application(app)
        d.run_all()
        d.loop.advance(warmup_ms)  # some playback before the user moves
        outcome = source.migrate("player", "host2", kind=kind, policy=policy)
        d.run_all()
        if not outcome.completed and self.faults is None:
            raise RuntimeError(
                f"migration failed: {outcome.failure_reason}")
        self.last_outcomes.append(outcome)
        return outcome

    def sweep(self, sizes_mb, policy: BindingPolicy,
              repeats: int = 1) -> List[SweepRow]:
        """The Fig. 8/9 sweep: one row per file size.

        Under a fault config, failed runs are excluded from the means (a
        size where every run failed raises).
        """
        rows = []
        for size_mb in sizes_mb:
            outcomes = [
                self.run_once(int(size_mb * 1e6), policy,
                              seed_offset=r)
                for r in range(repeats)
            ]
            outcomes = [o for o in outcomes if o.completed]
            if not outcomes:
                raise RuntimeError(
                    f"every migration at {size_mb} MB failed")
            rows.append(SweepRow(
                size_mb=size_mb,
                policy=policy.value,
                suspend_ms=mean(o.suspend_ms for o in outcomes),
                migrate_ms=mean(o.migrate_ms for o in outcomes),
                resume_ms=mean(o.resume_ms for o in outcomes),
                total_ms=mean(o.total_ms for o in outcomes),
                bytes_transferred=int(mean(o.bytes_transferred
                                           for o in outcomes)),
                repeats=repeats,
            ))
        return rows


@dataclass
class AvailabilityRow:
    """One point of a failure-rate sweep: reliability under injected loss."""

    loss_rate: float
    runs: int
    completed: int
    mean_total_ms: float  # over completed runs; 0.0 when none completed
    mean_retries: float
    resumed: int

    @property
    def success_rate(self) -> float:
        return self.completed / self.runs if self.runs else 0.0


def availability_experiment(loss_rates=(0.0, 0.1, 0.2, 0.3),
                            runs: int = 10,
                            size_mb: float = 5.0,
                            seed: int = 0,
                            reliability: bool = True,
                            config: Optional[TestbedConfig] = None,
                            observability=None) -> List[AvailabilityRow]:
    """Sweep injected packet-loss rate vs migration success and latency.

    Each cell runs ``runs`` fresh testbeds whose host1--host2 link suffers a
    permanent ``loss`` fault (armed at the first migration).  With
    ``reliability`` on, migrations use chunked checkpoint-resumable
    transfers plus a deadline; off reproduces the bare retry behaviour --
    the availability ablation the paper's healthy testbed never shows.

    Static binding is used so the whole application (data included) rides
    the hardened agent transfer; adaptive binding would stream the data
    remotely after check-in over plain unretried messages, measuring the
    streaming channel rather than migration availability.
    """
    from repro.faults import FaultConfig, FaultPlan, FaultSpec, link_target

    base = config if config is not None else TestbedConfig()
    rows: List[AvailabilityRow] = []
    for rate in loss_rates:
        plan = FaultPlan(seed=seed)
        if rate > 0:
            plan.add(FaultSpec(at_ms=0.0, kind="loss",
                               target=link_target("host1", "host2"),
                               params={"loss_rate": rate}))
        completed: List[MigrationOutcome] = []
        retries = 0
        resumed = 0
        for r in range(runs):
            faults = FaultConfig(
                plan=FaultPlan.from_dict(plan.to_dict()),
                seed=seed + r,
                transfer_chunk_bytes=256_000 if reliability else 0,
                migration_deadline_ms=60_000.0 if reliability else 0.0,
                max_transfer_retries=8 if reliability else None)
            experiment = MigrationExperiment(
                TestbedConfig(**{**base.__dict__, "seed": base.seed + r}),
                observability=observability, faults=faults)
            outcome = experiment.run_once(int(size_mb * 1e6),
                                          policy=BindingPolicy.STATIC)
            retries += outcome.transfer_retries
            resumed += 1 if outcome.transfer_resumed else 0
            if outcome.completed:
                completed.append(outcome)
        rows.append(AvailabilityRow(
            loss_rate=rate,
            runs=runs,
            completed=len(completed),
            mean_total_ms=(mean(o.total_ms for o in completed)
                           if completed else 0.0),
            mean_retries=retries / runs if runs else 0.0,
            resumed=resumed,
        ))
    return rows


@dataclass
class WindowRow:
    """One point of a transfer-window sweep on the high-latency route."""

    window: int
    chunks: int
    transfer_ms: float
    total_ms: float
    max_in_flight: int
    #: Transfer-time speedup vs the window=1 (stop-and-wait) row.
    speedup: float = 1.0


def transfer_window_experiment(windows=(1, 2, 4, 8),
                               payload_bytes: int = 1_000_000,
                               chunk_bytes: int = 65_536,
                               latency_ms: float = 40.0,
                               bandwidth_mbps: float = 10.0,
                               seed: int = 5,
                               observability=None) -> List[WindowRow]:
    """Sweep ``transfer_window`` over a 2-hop gateway route.

    The scenario the pipelined engine exists for: a ~1 MB agent crossing
    host--gateway--host links with tens of ms of per-hop latency.
    Stop-and-wait (window=1) pays the full two-hop latency once per chunk;
    a window of *w* keeps up to *w* chunks on the wire, so latency is paid
    once per window-load.  One deterministic migration per window size on a
    fresh identical rig; window=1 is the exact pre-pipelining engine.
    """
    from repro.agents.agent import Agent
    from repro.agents.mobility import CostModel
    from repro.agents.platform import AgentPlatform
    from repro.agents.serialization import register_agent_type
    from repro.net.kernel import EventLoop
    from repro.net.simnet import Network

    @register_agent_type
    class _PayloadCourier(Agent):
        blob: bytes = b""

        def get_state(self):
            return {"blob": type(self).blob}

        def restore_state(self, state):
            pass

    _PayloadCourier.blob = bytes(payload_bytes)
    rows: List[WindowRow] = []
    for window in windows:
        loop = EventLoop()
        loop.observability = observability
        net = Network(loop, seed=seed)
        for name in ("edge-a", "gateway", "edge-b"):
            net.create_host(name)
        net.connect("edge-a", "gateway", bandwidth_mbps=bandwidth_mbps,
                    latency_ms=latency_ms)
        net.connect("gateway", "edge-b", bandwidth_mbps=bandwidth_mbps,
                    latency_ms=latency_ms)
        platform = AgentPlatform(net)
        platform.mobility.cost_model = CostModel(
            transfer_chunk_bytes=chunk_bytes, transfer_window=window)
        source = platform.create_container("edge-a")
        platform.create_container("edge-b")
        agent = source.create_agent(_PayloadCourier, "courier")
        result = agent.do_move("edge-b")
        loop.run()
        if not result.completed:
            raise RuntimeError(
                f"window={window} migration failed: {result.failure_reason}")
        rows.append(WindowRow(
            window=window,
            chunks=result.chunks_total,
            transfer_ms=result.transfer_ms,
            total_ms=result.total_ms,
            max_in_flight=result.max_in_flight,
        ))
    baseline = next((r for r in rows if r.window == 1), rows[0])
    for row in rows:
        row.speedup = (baseline.transfer_ms / row.transfer_ms
                       if row.transfer_ms else 1.0)
    return rows


def round_trip_experiment(size_mb: float = 5.0,
                          skew_ms: float = 12_345.0,
                          observability=None) -> Dict[str, float]:
    """Fig. 7: migrate out and back across unsynchronized clocks.

    Returns the skew-polluted one-way readings, the Fig. 7 corrected
    round-trip sum, and the (simulation-only) ground truth.
    """
    config = TestbedConfig(dest_skew_ms=skew_ms)
    if observability is not None and observability.enabled:
        observability.begin_run(f"round-trip/{size_mb:g}MB/skew{skew_ms:g}")
    d, source, destination = build_paper_testbed(
        config, observability=observability)
    app = MusicPlayerApp.build("player", "alice",
                               track_bytes=int(size_mb * 1e6))
    source.launch_application(app)
    d.run_all()
    out = source.migrate("player", "host2")
    d.run_all()
    back = destination.migrate("player", "host1")
    d.run_all()
    if not (out.completed and back.completed):
        raise RuntimeError("round-trip migration failed")
    polluted_out = out.arrive_local - out.depart_local
    polluted_back = back.arrive_local - back.depart_local
    corrected = round_trip_cost(out.depart_local, out.arrive_local,
                                back.depart_local, back.arrive_local)
    # Ground truth: the agent's actual two-way transfer time on the global
    # simulation clock (unobservable on a real testbed; that is the point
    # of the correction).
    true_total = ((out.agent_arrived_at - out.agent_departed_at)
                  + (back.agent_arrived_at - back.agent_departed_at))
    return {
        "skew_ms": skew_ms,
        "one_way_out_local_ms": polluted_out,
        "one_way_back_local_ms": polluted_back,
        "corrected_round_trip_ms": corrected,
        "true_round_trip_ms": true_total,
        "correction_error_ms": abs(corrected - true_total),
    }


def clone_dispatch_experiment(room_count: int = 3, slide_count: int = 40,
                              per_slide_bytes: int = 120_000,
                              carry_full_app: bool = False,
                              seed: int = 11,
                              observability=None) -> Dict[str, object]:
    """The lecture scenario: clone the slide show to N overflow rooms.

    ``carry_full_app=False`` models the paper's setup (rooms already have
    the presentation app + projector, only slides travel); ``True`` ships
    logic + UI + slides, the naive alternative.
    """
    if observability is not None and observability.enabled:
        observability.begin_run(
            f"clone-dispatch/{room_count}rooms/"
            f"{'full' if carry_full_app else 'partial'}")
    d = Deployment(seed=seed, observability=observability)
    d.add_space("main-room")
    main = d.add_host("main-pc", "main-room")
    d.add_gateway("gw-main", "main-room")
    rooms = []
    for i in range(room_count):
        space = f"room-{i + 2}"
        d.add_space(space)
        pc = d.add_host(f"pc-{i + 2}", space)
        d.add_gateway(f"gw-{i + 2}", space)
        d.connect_spaces("main-room", space)
        if not carry_full_app:
            partial = SlideShowApp("lecture", "speaker")
            partial.add_component(LogicComponent("impress-logic", 400_000))
            partial.add_component(PresentationComponent("slide-ui", 300_000))
            pc.install_application(partial)
        rooms.append(pc)
    show = SlideShowApp.build("lecture", "speaker", slide_count=slide_count,
                              per_slide_bytes=per_slide_bytes)
    main.launch_application(show)
    d.run_all()
    outcomes = []
    start = d.loop.now
    for i in range(room_count):
        outcomes.append(main.migrate("lecture", f"pc-{i + 2}",
                                     kind=MigrationKind.CLONE_DISPATCH))
    d.run_all()
    dispatch_done = d.loop.now
    for outcome in outcomes:
        if not outcome.completed:
            raise RuntimeError(f"clone failed: {outcome.failure_reason}")
    # One slide flip must reach every room; measure propagation.
    flip_start = d.loop.now
    show.goto_slide(2)
    d.run_all()
    sync_ms = d.loop.now - flip_start
    assert all(r.application("lecture").displayed_slide == 2 for r in rooms)
    return {
        "room_count": room_count,
        "carry_full_app": carry_full_app,
        "total_dispatch_ms": dispatch_done - start,
        "mean_clone_ms": mean(o.total_ms for o in outcomes),
        "max_clone_ms": max(o.total_ms for o in outcomes),
        "bytes_per_clone": outcomes[0].bytes_transferred,
        "slide_sync_ms": sync_ms,
    }
