"""Standing benchmark scenarios and the ``BENCH_*.json`` perf trajectory.

The repo commits one ``BENCH_<scenario>.json`` per standing scenario at the
repository root.  Each file is a schema-versioned snapshot of how fast the
simulator runs that scenario *on the machine that wrote it* -- events/sec,
sim-seconds per wall-second, peak RSS -- plus the sim-side facts that must
NOT drift between commits: the scenario parameters, the fleet
:class:`~repro.obs.slo.SLOReport` and the deterministic trace digest.

``python -m repro bench`` regenerates the snapshots;
``python -m repro bench --check`` re-runs the scenarios and compares
events/sec against the committed baselines, flagging (not failing) any
regression beyond :data:`DEFAULT_THRESHOLD`.  Wall-clock numbers are
machine-relative, which is why the comparison is a soft signal: CI prints a
warning annotation and a human decides whether the trend is real.

Schema (``BENCH_FORMAT``)::

    {
      "format": "repro.bench.trajectory/1",
      "scenario": "scale",
      "mode": "full" | "quick",
      "params": {...},                  # exact scenario inputs
      "metrics": {
        "events": 123456,               # kernel events dispatched
        "events_per_sec": 250000.0,     # wall-clock throughput
        "sim_time_ms": 52000.0,         # sim-time the window advanced
        "sim_s_per_wall_s": 104.0,      # simulation speed
        "wall_s": 0.5,
        "peak_rss_bytes": 48000000      # null off-POSIX
      },
      "slo": {...} | null,              # SLOReport.to_dict()
      "profile": {...},                 # ProfileReport.to_dict()
      "extra": {...},                   # scenario-specific result facts
      "sim_digest": "sha256...",        # deterministic per (scenario, seed)
      "created": "2026-08-08T12:00:00Z"
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Tuple

BENCH_FORMAT = "repro.bench.trajectory/1"

#: Soft-fail threshold for the events/sec comparison: a current run below
#: ``baseline * (1 - DEFAULT_THRESHOLD)`` is flagged as a regression.
DEFAULT_THRESHOLD = 0.20


# -- scenario runners ------------------------------------------------------
#
# Each runner takes (observability, quick) and returns
# ``(params, extra, slo_dict_or_None)``.  The driver owns global-state
# reset, the profiler, digesting and record assembly, so runners only run
# their scenario against the provided hub.


def _run_scale(observability, quick: bool) -> Tuple[Dict, Dict, Optional[Dict]]:
    from repro.bench.scale import scale_benchmark

    params: Dict[str, Any] = dict(
        spaces=4, hosts_per_space=3, apps_per_host=2, legs=12,
        admission_limit=4) if quick else dict(
        spaces=10, hosts_per_space=5, apps_per_host=4, legs=40,
        admission_limit=8)
    params.update(payload_bytes=60_000, seed=21,
                  deadline_ms=120_000.0, prestage_fraction=0.25)
    result = scale_benchmark(observability=observability, **params)
    extra = {
        "hosts": result.hosts,
        "applications": result.applications,
        "completed": result.completed,
        "rejected": result.rejected,
        "max_queue_depth": result.max_queue_depth,
        "sim_makespan_ms": result.sim_makespan_ms,
        "peak_link_utilization": dict(result.peak_link_utilization),
    }
    slo = result.slo.to_dict() if result.slo is not None else None
    return params, extra, slo


def _run_transfer_window(observability, quick: bool
                         ) -> Tuple[Dict, Dict, Optional[Dict]]:
    from repro.bench.harness import transfer_window_experiment

    params: Dict[str, Any] = dict(
        windows=[1, 4], payload_bytes=250_000) if quick else dict(
        windows=[1, 2, 4, 8], payload_bytes=1_000_000)
    params.update(chunk_bytes=65_536, latency_ms=40.0,
                  bandwidth_mbps=10.0, seed=5)
    rows = transfer_window_experiment(
        observability=observability,
        **{**params, "windows": tuple(params["windows"])})
    extra = {
        "rows": [
            {"window": r.window, "chunks": r.chunks,
             "transfer_ms": r.transfer_ms, "total_ms": r.total_ms,
             "max_in_flight": r.max_in_flight, "speedup": r.speedup}
            for r in rows
        ],
        "best_speedup": max(r.speedup for r in rows),
    }
    return params, extra, None


def _run_workload_day(observability, quick: bool
                      ) -> Tuple[Dict, Dict, Optional[Dict]]:
    from repro.bench.scenarios import SmartBuildingWorkload, WorkloadConfig
    from repro.obs.slo import SLOAggregator

    params: Dict[str, Any] = dict(
        spaces=3, hosts_per_space=2, users=4, duration_ms=600_000.0,
        mean_dwell_ms=120_000.0, track_bytes=500_000) if quick else dict(
        spaces=4, hosts_per_space=2, users=8, duration_ms=3_600_000.0,
        mean_dwell_ms=300_000.0, track_bytes=2_000_000)
    params.update(mobility_pattern="routine", prestaging=True, seed=1)
    workload = SmartBuildingWorkload(WorkloadConfig(**params),
                                     observability=observability)
    report = workload.run()
    extra = {
        "moves": report.moves_injected,
        "migrations_completed": report.migrations_completed,
        "migrations_failed": report.migrations_failed,
        "follow_rate": report.follow_rate,
        "bytes_migrated": report.bytes_migrated,
        "apps_running_at_end": report.apps_running_at_end,
    }
    slo = SLOAggregator(workload.deployment).report().to_dict()
    return params, extra, slo


def _run_city(observability, quick: bool) -> Tuple[Dict, Dict, Optional[Dict]]:
    """The city-scale heavy-traffic benchmark (see :mod:`repro.city`).

    Quick mode runs the ``smoke`` tier (40 spaces / 300 users); full mode
    runs the standing ``quick`` tier (200 spaces / 2,000 users / 7k+
    legs), which is what ``BENCH_city.json`` tracks.  The ``full`` city
    tier (2,000 spaces / 50,000 users) is a CLI-only scale-out target
    (``python -m repro city --tier full``), too heavy for a standing CI
    benchmark.
    """
    from repro.city import CityConfig, CityWorkload

    tier = "smoke" if quick else "quick"
    config = CityConfig.for_tier(tier, seed=11)
    result = CityWorkload(config, observability=observability).run()
    params: Dict[str, Any] = dict(
        tier=tier, spaces=config.spaces, users=config.users,
        seed=config.seed, admission_limit=config.admission_limit,
        deadline_ms=config.deadline_ms, prestage=config.prestage,
        meeting_probability=config.meeting_probability)
    extra = {
        "hosts": result.hosts,
        "apps": result.apps,
        "moves": result.moves,
        "legs_submitted": result.legs_submitted,
        "legs_completed": result.legs_completed,
        "legs_failed": result.legs_failed,
        "legs_rejected": result.legs_rejected,
        "follow_ups": result.follow_ups,
        "prestage_pushes": result.prestage_pushes,
        "prestage_hits": result.prestage_hits,
        "hourly_moves": list(result.hourly_moves),
        "sim_makespan_ms": result.sim_makespan_ms,
        "trace_digest": result.trace_digest,
        "fleet_digest": result.fleet_digest,
    }
    return params, extra, result.slo.to_dict()


def _swallow_registry_result(result, error) -> None:
    """Sink for bench-issued registry reads (latency is the measurement)."""


def _registry_mode_stats(observability, deployment,
                         issued: int) -> Dict[str, Any]:
    """Extract one sub-run's registry numbers without creating series."""
    latency: Optional[Dict[str, Any]] = None
    for hist in observability.metrics.histograms():
        if hist.name == "registry.lookup.latency_ms" and hist.values:
            latency = {
                "n": hist.count,
                "p50": hist.percentile(50.0),
                "p95": hist.percentile(95.0),
                "p99": hist.percentile(99.0),
                "max": max(hist.values),
            }
    counts: Dict[str, int] = {}
    for counter in observability.metrics.counters():
        if counter.name.startswith("registry."):
            counts[counter.name] = counts.get(counter.name, 0) \
                + int(counter.value)
    hits = counts.get("registry.cache.hit", 0)
    misses = counts.get("registry.cache.miss", 0)
    stats = {
        "lookups_issued": issued,
        "latency_ms": latency,
        "messages": counts.get("registry.messages", 0),
        "requests": counts.get("registry.requests", 0),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_invalidates": counts.get("registry.cache.invalidate", 0),
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
    }
    federation = getattr(deployment, "federation", None)
    if federation is not None:
        stats["federation"] = federation.stats()
    return stats


def _run_registry(observability, quick: bool
                  ) -> Tuple[Dict, Dict, Optional[Dict]]:
    """Flat center vs federated shards under one city lookup storm.

    Both modes build the same city (every commuter's apps launched at
    home, which already exercises registration-write locality), then
    replay an identical deterministic read sweep: per app, ``passes``
    repeats of a ``components_at`` (every ``global_every``-th app an
    ``application_hosts`` fan-out instead), spaced so the flat center
    stays below its service capacity -- the comparison measures
    architecture, not a melted queue.  The flat sub-run streams into a
    private hub (its digest lands in ``extra``); the federated sub-run
    streams into the outer hub, so the record's ``sim_digest`` pins the
    federated behaviour.
    """
    from repro.city import CityConfig, CityWorkload
    from repro.obs import Observability
    from repro.simcheck.runner import reset_global_state, trace_digest

    tier = "smoke" if quick else "quick"
    passes, spacing_ms, repeat_gap_ms = 3, 8.0, 100.0
    global_every = 100

    def sweep(federated: bool, obs) -> Tuple[Any, int]:
        reset_global_state()
        config = CityConfig.for_tier(tier, seed=11,
                                     federated_registry=federated,
                                     registry_telemetry=True)
        workload = CityWorkload(config, observability=obs)
        deployment = workload.build()
        deployment.run_all()
        loop = deployment.loop
        issued = 0
        t0 = loop.now + 10.0
        for i, (app_name, host) in enumerate(sorted(
                workload.app_host.items())):
            client = deployment.middleware(host).registry_client
            if i % global_every == 0:
                operation: str = "application_hosts"
                args: Dict[str, Any] = {"app_name": app_name}
            else:
                operation = "components_at"
                args = {"app_name": app_name, "host": host}
            base = t0 + i * spacing_ms
            for repeat in range(passes):
                loop.call_at(base + repeat * repeat_gap_ms, client.call,
                             operation, dict(args),
                             _swallow_registry_result)
                issued += 1
        deployment.run_all()
        return deployment, issued

    flat_obs = Observability(trace=False)
    flat_deployment, flat_issued = sweep(False, flat_obs)
    flat = _registry_mode_stats(flat_obs, flat_deployment, flat_issued)
    flat_digest = trace_digest(flat_obs)
    fed_deployment, fed_issued = sweep(True, observability)
    federated = _registry_mode_stats(observability, fed_deployment,
                                     fed_issued)

    params: Dict[str, Any] = dict(
        tier=tier, seed=11, passes=passes, spacing_ms=spacing_ms,
        repeat_gap_ms=repeat_gap_ms, global_every=global_every)
    improvement = {}
    if flat["latency_ms"] and federated["latency_ms"]:
        for q in ("p50", "p95", "p99"):
            flat_q = flat["latency_ms"][q]
            fed_q = federated["latency_ms"][q]
            # None, not inf: cached federated reads are 0 ms and IEEE
            # infinities are not valid strict JSON.
            improvement[f"{q}_speedup"] = \
                flat_q / fed_q if fed_q > 0 else None
    if federated["messages"]:
        improvement["message_ratio"] = \
            flat["messages"] / federated["messages"]
    extra = {
        "flat": flat,
        "federated": federated,
        "improvement": improvement,
        # Digest of the flat sub-run (the outer hub pins the federated
        # one), so both behaviours are drift-checked commit to commit.
        "flat_sim_digest": flat_digest,
    }
    return params, extra, None


#: Standing scenarios, in trajectory order.  ``scale`` is the primary one
#: CI and the roadmap track; ``city`` is the heavy-traffic yardstick the
#: roadmap's kernel speedups are measured against; ``registry`` pits the
#: federated registry against the flat center under one lookup storm;
#: the others cover the transfer engine and the churn/pre-staging macro
#: path.
SCENARIOS: Dict[str, Callable] = {
    "scale": _run_scale,
    "transfer_window": _run_transfer_window,
    "workload_day": _run_workload_day,
    "city": _run_city,
    "registry": _run_registry,
}


# -- record assembly -------------------------------------------------------


def run_bench(scenario: str, quick: bool = False) -> Dict[str, Any]:
    """Run one standing scenario under the profiler; return a BENCH record.

    Resets global counters first (same seam ``repro.simcheck`` uses), so
    the record's ``sim_digest`` is reproducible regardless of what the
    process ran before.  Everything the profiler records is wall-clock
    side, so attaching it cannot perturb the digest.
    """
    from repro.obs import KernelProfiler, Observability
    from repro.simcheck.runner import reset_global_state, trace_digest

    runner = SCENARIOS.get(scenario)
    if runner is None:
        raise ValueError(
            f"unknown bench scenario {scenario!r} "
            f"(have: {', '.join(sorted(SCENARIOS))})")
    reset_global_state()
    observability = Observability(trace=False)
    profiler = KernelProfiler().attach(observability)
    params, extra, slo = runner(observability, quick)
    profiler.detach()
    profile = profiler.report()
    return {
        "format": BENCH_FORMAT,
        "scenario": scenario,
        "mode": "quick" if quick else "full",
        "params": dict(params),
        "metrics": {
            "events": profile.events,
            "events_per_sec": profile.events_per_sec,
            "sim_time_ms": profile.sim_ms,
            "sim_s_per_wall_s": profile.sim_s_per_wall_s,
            "wall_s": profile.wall_s,
            "peak_rss_bytes": profile.peak_rss,
        },
        "slo": slo,
        "profile": profile.to_dict(),
        "extra": extra,
        "sim_digest": trace_digest(observability),
        "created": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
    }


def bench_path(scenario: str, root: str = ".") -> str:
    return os.path.join(root, f"BENCH_{scenario}.json")


def write_bench(record: Dict[str, Any], root: str = ".") -> str:
    path = bench_path(record["scenario"], root)
    os.makedirs(root, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: not a bench trajectory record "
            f"(want format {BENCH_FORMAT})")
    return data


# -- trajectory comparison -------------------------------------------------


@dataclass
class BenchComparison:
    """Soft verdict of one current run against its committed baseline."""

    scenario: str
    baseline_eps: float
    current_eps: float
    threshold: float = DEFAULT_THRESHOLD
    #: False when baseline and current ran different modes: quick runs are
    #: dominated by fixed setup cost, so their events/sec says nothing
    #: about a full-mode baseline (and vice versa).
    comparable: bool = True
    #: Non-blocking observations (mode mismatch, params changed, ...).
    notes: List[str] = field(default_factory=list)
    #: True when sim_digest changed at identical mode+params: the scenario
    #: *behaved* differently, which is never machine noise.  Unlike an
    #: events/sec dip this is a hard CI failure (``--check`` exits 1).
    digest_drift: bool = False

    @property
    def ratio(self) -> float:
        """current / baseline events-per-sec (1.0 = unchanged)."""
        return (self.current_eps / self.baseline_eps
                if self.baseline_eps > 0 else 1.0)

    @property
    def regressed(self) -> bool:
        return self.comparable and self.ratio < 1.0 - self.threshold

    def summary(self) -> str:
        verdict = ("REGRESSED" if self.regressed
                   else "ok" if self.comparable else "not comparable")
        line = (f"{self.scenario}: {self.current_eps:,.0f} events/s vs "
                f"baseline {self.baseline_eps:,.0f} "
                f"({self.ratio:.0%}) -- {verdict}")
        for note in self.notes:
            line += f"\n  note: {note}"
        return line


def compare_bench(baseline: Dict[str, Any], current: Dict[str, Any],
                  threshold: float = DEFAULT_THRESHOLD) -> BenchComparison:
    """Compare a fresh record against a committed baseline.

    Only events/sec drives the (soft) regression verdict -- wall clock is
    machine-relative.  A ``sim_digest`` mismatch at *equal* mode and
    params is different in kind: the scenario's behaviour changed, which
    no machine difference can explain, so it sets ``digest_drift`` and
    the CLI turns it into a hard failure.
    """
    if baseline["scenario"] != current["scenario"]:
        raise ValueError(
            f"scenario mismatch: baseline {baseline['scenario']!r} vs "
            f"current {current['scenario']!r}")
    comparison = BenchComparison(
        scenario=current["scenario"],
        baseline_eps=float(baseline["metrics"]["events_per_sec"]),
        current_eps=float(current["metrics"]["events_per_sec"]),
        threshold=threshold,
    )
    if baseline.get("mode") != current.get("mode"):
        comparison.comparable = False
        comparison.notes.append(
            f"mode mismatch: baseline {baseline.get('mode')!r} vs "
            f"current {current.get('mode')!r} -- throughput is not "
            f"comparable across modes")
    elif baseline.get("params") != current.get("params"):
        comparison.notes.append("scenario params changed since baseline")
    elif baseline.get("sim_digest") != current.get("sim_digest"):
        comparison.digest_drift = True
        comparison.notes.append(
            "sim digest drifted at identical params: scenario behaviour "
            "changed, re-baseline before trusting the trend")
    return comparison
