"""Concurrency and scale benchmarks for the fair-share link model.

The paper's §5 testbed migrates one application at a time, so the original
exclusive-reservation link model was never exercised by overlapping
transfers.  These experiments measure what the contention rework buys:

- :func:`concurrent_migration_experiment` -- K follow-me migrations whose
  routes share a backbone link, run twice on identical rigs: serialized
  (scheduler admission limit 1) and concurrent (limit K).  Fair sharing
  cannot shrink the wire time of equal flows, so the speedup comes from
  overlapping the CPU-bound suspend/snapshot/restore/resume phases of one
  migration with the wire time of another.
- :func:`scale_benchmark` -- a deployment of ≥50 hosts and ≥200 running
  applications driving many concurrent migration legs through the
  :class:`~repro.core.middleware.MigrationScheduler`, recording real
  wall-clock, simulated makespan and per-class link utilization from each
  link's ``class_busy_ms`` ledger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.music_player import MusicPlayerApp
from repro.core import BindingPolicy, Deployment
from repro.net.simnet import BULK, CONTROL
from repro.net.topology import LinkSpec
from repro.obs.slo import SLOAggregator, SLOReport


def _build_backbone_rig(migrations: int, payload_bytes: int, seed: int,
                        bandwidth_mbps: float, latency_ms: float,
                        observability=None):
    """Two spaces bridged by one backbone: src-i in west, dst-i in east.

    Every migration leg crosses the single west--east link, so concurrent
    runs contend there while the per-host access links stay private.
    """
    lan = LinkSpec(bandwidth_mbps=bandwidth_mbps, latency_ms=latency_ms)
    d = Deployment(seed=seed, observability=observability)
    d.add_space("west", lan=lan)
    d.add_space("east", lan=lan)
    for i in range(migrations):
        d.add_host(f"src-{i}", "west")
        d.add_host(f"dst-{i}", "east")
    d.add_gateway("gw-west", "west")
    d.add_gateway("gw-east", "east")
    d.connect_spaces("west", "east", lan)
    for i in range(migrations):
        app = MusicPlayerApp.build(f"app-{i}", f"user-{i}",
                                   track_bytes=payload_bytes)
        d.middleware(f"src-{i}").launch_application(app)
    d.run_all()
    return d


@dataclass
class ConcurrentMigrationResult:
    """Serialized vs concurrent makespan of K shared-backbone migrations."""

    migrations: int
    payload_bytes: int
    serialized_ms: float
    concurrent_ms: float
    #: Mean single-migration time within the serialized run.
    single_ms: float
    #: Simulated wire occupancy of the backbone link, per traffic class,
    #: from the concurrent run.
    backbone_busy_ms: Dict[str, float] = field(default_factory=dict)
    max_queue_wait_ms: float = 0.0

    @property
    def speedup(self) -> float:
        return (self.serialized_ms / self.concurrent_ms
                if self.concurrent_ms else 1.0)


def _run_legs(migrations: int, payload_bytes: int, seed: int, limit: int,
              bandwidth_mbps: float, latency_ms: float,
              policy: BindingPolicy, observability=None):
    """One rig, ``migrations`` legs through a scheduler with ``limit``."""
    d = _build_backbone_rig(migrations, payload_bytes, seed,
                            bandwidth_mbps, latency_ms, observability)
    scheduler = d.enable_migration_scheduler(limit=limit)
    started = d.loop.now
    handles = [
        scheduler.submit(f"src-{i}", f"app-{i}", f"dst-{i}", policy=policy)
        for i in range(migrations)
    ]
    d.run_all()
    elapsed = d.loop.now - started
    for handle in handles:
        if handle.outcome is None or not handle.outcome.completed:
            raise RuntimeError(
                f"leg {handle.app_name} failed: "
                f"{handle.error or handle.outcome.failure_reason}")
    backbone = d.network.link_between("gw-west", "gw-east")
    return d, handles, elapsed, backbone


def concurrent_migration_experiment(
        migrations: int = 2,
        payload_bytes: int = 200_000,
        bandwidth_mbps: float = 10.0,
        latency_ms: float = 2.0,
        seed: int = 13,
        policy: BindingPolicy = BindingPolicy.ADAPTIVE,
        observability=None) -> ConcurrentMigrationResult:
    """Measure the makespan win of admitting migrations concurrently.

    Both runs use identical topologies, seeds and payloads; only the
    scheduler's admission limit differs (1 vs ``migrations``).  With the
    old exclusive-reservation link model the concurrent run would degrade
    to the serialized one plus head-of-line blocking on control traffic;
    under fair sharing it overlaps CPU phases against wire time and
    finishes well under ``migrations x single_ms``.
    """
    _, serial_handles, serialized_ms, _ = _run_legs(
        migrations, payload_bytes, seed, 1, bandwidth_mbps, latency_ms,
        policy, observability)
    single_ms = sum(h.outcome.total_ms for h in serial_handles) / migrations
    _, handles, concurrent_ms, backbone = _run_legs(
        migrations, payload_bytes, seed, migrations, bandwidth_mbps,
        latency_ms, policy, observability)
    return ConcurrentMigrationResult(
        migrations=migrations,
        payload_bytes=payload_bytes,
        serialized_ms=serialized_ms,
        concurrent_ms=concurrent_ms,
        single_ms=single_ms,
        backbone_busy_ms=dict(backbone.class_busy_ms),
        max_queue_wait_ms=max(h.queue_wait_ms for h in handles),
    )


@dataclass
class ScaleResult:
    """One scale-benchmark run."""

    hosts: int
    applications: int
    legs: int
    admission_limit: int
    #: Real (not simulated) seconds the run took.
    wall_clock_s: float
    #: Simulated makespan of the migration wave.
    sim_makespan_ms: float
    completed: int
    rejected: int
    max_queue_depth: int
    #: Summed wire occupancy per traffic class across every link.
    class_busy_ms: Dict[str, float] = field(default_factory=dict)
    #: Utilization (busy / makespan) of the single busiest link, per class.
    peak_link_utilization: Dict[str, float] = field(default_factory=dict)
    #: Fleet SLO view over the migration wave (latency percentiles,
    #: deadline misses, prestage hits, per-class utilization).
    slo: Optional[SLOReport] = None

    def summary(self) -> str:
        util = ", ".join(f"{cls}={value:.2f}"
                         for cls, value in
                         sorted(self.peak_link_utilization.items()))
        return (f"{self.hosts} hosts / {self.applications} apps: "
                f"{self.completed}/{self.legs} legs in "
                f"{self.sim_makespan_ms:.0f} sim-ms "
                f"({self.wall_clock_s:.1f} s real), peak link util {util}")


def scale_benchmark(spaces: int = 10,
                    hosts_per_space: int = 5,
                    apps_per_host: int = 4,
                    legs: int = 40,
                    admission_limit: int = 8,
                    payload_bytes: int = 60_000,
                    bandwidth_mbps: float = 10.0,
                    latency_ms: float = 2.0,
                    seed: int = 21,
                    deadline_ms: Optional[float] = None,
                    prestage_fraction: float = 0.0,
                    observability=None) -> ScaleResult:
    """A multi-space campus under a concurrent migration wave.

    Defaults build 50 hosts in 10 gatewayed spaces on a backbone ring and
    launch 200 small applications, then migrate ``legs`` of them to the
    next space over, all submitted at once.  The scheduler fans them out
    ``admission_limit`` at a time; per-class ``class_busy_ms`` ledgers
    show how much wire time bulk transfers versus control chatter consumed.

    ``deadline_ms`` (if set) is attached to every submitted leg, so the
    resulting :class:`~repro.obs.slo.SLOReport` has a real deadline-miss
    rate.  ``prestage_fraction`` warms that fraction of the legs'
    destinations with an explicit prestage push *before* the wave, which
    shows up in the report as prestage hits (warm-start migrations).
    """
    lan = LinkSpec(bandwidth_mbps=bandwidth_mbps, latency_ms=latency_ms)
    d = Deployment(seed=seed, observability=observability)
    names: List[List[str]] = []
    for s in range(spaces):
        space = f"space-{s}"
        d.add_space(space, lan=lan)
        row = []
        for h in range(hosts_per_space):
            row.append(d.add_host(f"h{s}-{h}", space).host_name)
        d.add_gateway(f"gw-{s}", space)
        names.append(row)
    for s in range(spaces):  # backbone ring
        d.connect_spaces(f"space-{s}", f"space-{(s + 1) % spaces}", lan)
    app_count = 0
    for s, row in enumerate(names):
        for h, host in enumerate(row):
            for a in range(apps_per_host):
                app = MusicPlayerApp.build(
                    f"app-{s}-{h}-{a}", f"user-{s}-{h}-{a}",
                    track_bytes=payload_bytes)
                d.middleware(host).launch_application(app)
                app_count += 1
    d.run_all()
    scheduler = d.enable_migration_scheduler(limit=admission_limit)

    def _leg(i: int):
        s = i % spaces
        h = (i // spaces) % hosts_per_space
        a = (i // (spaces * hosts_per_space)) % apps_per_host
        return names[s][h], f"app-{s}-{h}-{a}", names[(s + 1) % spaces][h]

    # Warm phase (untimed): push the first fraction of legs' components to
    # their destinations so those migrations land as prestage hits.
    warm = int(legs * prestage_fraction)
    for i in range(warm):
        source, app_name, target = _leg(i)
        d.middleware(source).prestage(app_name, target)
    d.run_all()

    clock_start = time.perf_counter()
    sim_start = d.loop.now
    submitted = 0
    for i in range(legs):
        source, app_name, target = _leg(i)
        scheduler.submit(source, app_name, target, deadline_ms=deadline_ms)
        submitted += 1
    d.run_all()
    makespan = d.loop.now - sim_start
    wall = time.perf_counter() - clock_start
    class_totals: Dict[str, float] = {CONTROL: 0.0, BULK: 0.0}
    peak: Dict[str, float] = {CONTROL: 0.0, BULK: 0.0}
    for link in d.network.links:
        for cls, busy in link.class_busy_ms.items():
            class_totals[cls] = class_totals.get(cls, 0.0) + busy
            if makespan > 0:
                peak[cls] = max(peak.get(cls, 0.0),
                                min(1.0, busy / makespan))
    return ScaleResult(
        hosts=spaces * hosts_per_space,
        applications=app_count,
        legs=submitted,
        admission_limit=admission_limit,
        wall_clock_s=wall,
        sim_makespan_ms=makespan,
        completed=scheduler.completed,
        rejected=scheduler.rejected,
        max_queue_depth=scheduler.max_queue_depth,
        class_busy_ms=class_totals,
        peak_link_utilization=peak,
        slo=SLOAggregator(d, window_ms=makespan or None).report(),
    )
