"""Figure-style text tables for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import AvailabilityRow, SweepRow, WindowRow
from repro.core.metrics import PhaseStats


def format_phase_table(title: str, rows: Sequence[SweepRow]) -> str:
    """A Fig. 8/9-style table: suspend / migrate / resume / total per size."""
    lines = [title, "-" * len(title)]
    header = (f"{'File Size':>10} {'suspend':>10} {'migrate':>10} "
              f"{'resume':>10} {'total':>10}")
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row.size_mb:>9.1f}M {row.suspend_ms:>9.0f}ms "
            f"{row.migrate_ms:>9.0f}ms {row.resume_ms:>9.0f}ms "
            f"{row.total_ms:>9.0f}ms")
    return "\n".join(lines)


def format_comparison_table(title: str, adaptive: Sequence[SweepRow],
                            static: Sequence[SweepRow]) -> str:
    """The Fig. 10 comparative table: adaptive vs static total cost."""
    if len(adaptive) != len(static):
        raise ValueError("sweeps must cover the same sizes")
    lines = [title, "-" * len(title)]
    lines.append(f"{'File Size':>10} {'Adaptive':>12} {'Static':>12} "
                 f"{'Static/Adaptive':>16}")
    for a, s in zip(adaptive, static):
        if a.size_mb != s.size_mb:
            raise ValueError("size mismatch between sweeps")
        ratio = s.total_ms / a.total_ms if a.total_ms else float("inf")
        lines.append(f"{a.size_mb:>9.1f}M {a.total_ms:>10.0f}ms "
                     f"{s.total_ms:>10.0f}ms {ratio:>15.1f}x")
    return "\n".join(lines)


def format_stats_table(title: str, stats: Dict[str, PhaseStats]) -> str:
    """Per-phase aggregate table (ms) with tail percentiles.

    ``stats`` is the output of :func:`repro.core.metrics.summarize`.
    """
    lines = [title, "-" * len(title)]
    lines.append(f"{'phase':>8} {'n':>5} {'mean':>9} {'stdev':>9} "
                 f"{'min':>9} {'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}")
    for stat in stats.values():
        lines.append(
            f"{stat.phase:>8} {stat.samples:>5} {stat.mean_ms:>9.1f} "
            f"{stat.stdev_ms:>9.1f} {stat.min_ms:>9.1f} "
            f"{stat.p50_ms:>9.1f} {stat.p95_ms:>9.1f} "
            f"{stat.p99_ms:>9.1f} {stat.max_ms:>9.1f}")
    return "\n".join(lines)


def format_availability_table(title: str,
                              rows: Sequence[AvailabilityRow]) -> str:
    """Failure-rate sweep table: success / latency / recovery per loss rate.

    ``rows`` is the output of
    :func:`repro.bench.harness.availability_experiment`.
    """
    lines = [title, "-" * len(title)]
    lines.append(f"{'loss rate':>10} {'runs':>6} {'ok':>5} {'success':>9} "
                 f"{'mean total':>12} {'mean retries':>13} {'resumed':>8}")
    for row in rows:
        total = (f"{row.mean_total_ms:>10.0f}ms" if row.completed
                 else f"{'--':>12}")
        lines.append(
            f"{row.loss_rate:>10.2f} {row.runs:>6} {row.completed:>5} "
            f"{row.success_rate * 100:>8.1f}% {total} "
            f"{row.mean_retries:>13.1f} {row.resumed:>8}")
    return "\n".join(lines)


def format_window_table(title: str, rows: Sequence[WindowRow]) -> str:
    """Transfer-window sweep table: pipelined vs stop-and-wait latency.

    ``rows`` is the output of
    :func:`repro.bench.harness.transfer_window_experiment`.
    """
    lines = [title, "-" * len(title)]
    lines.append(f"{'window':>7} {'chunks':>7} {'in-flight':>10} "
                 f"{'transfer':>10} {'total':>10} {'speedup':>9}")
    for row in rows:
        lines.append(
            f"{row.window:>7} {row.chunks:>7} {row.max_in_flight:>10} "
            f"{row.transfer_ms:>8.0f}ms {row.total_ms:>8.0f}ms "
            f"{row.speedup:>8.2f}x")
    return "\n".join(lines)


def format_kv_table(title: str, rows: List[Dict[str, object]]) -> str:
    """Generic table from a list of uniform dicts (ablation output)."""
    if not rows:
        return title
    lines = [title, "-" * len(title)]
    keys = list(rows[0].keys())
    lines.append("  ".join(f"{k:>18}" for k in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row[key]
            if isinstance(value, float):
                text = f"{value:.2f}".rstrip("0").rstrip(".")
                cells.append(f"{text:>18}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
