"""Synthetic multi-user workloads: a day in a smart building.

Generates a building of smart spaces, a population of users with
Markov-style mobility between them, and one follow-me application per user;
then replays hours of movement and aggregates what the middleware did
(migrations, bytes, failures, latencies).  This is the macro-benchmark
counterpart to the paper's micro-measurements: it answers "what does a
whole deployment look like under realistic churn?".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional

from repro.apps.editor import EditorApp
from repro.apps.messenger import MessengerApp
from repro.apps.music_player import MusicPlayerApp
from repro.core import Deployment, UserProfile
from repro.core.application import AppStatus
from repro.net.topology import LinkSpec


@dataclass
class WorkloadConfig:
    """Shape of the synthetic building and population."""

    spaces: int = 4
    hosts_per_space: int = 2
    users: int = 6
    #: Simulated duration of the workload.
    duration_ms: float = 3_600_000.0  # one hour
    #: Mean dwell time in a space before a user moves on.
    mean_dwell_ms: float = 300_000.0  # five minutes
    #: App mix per user (cycled): music (2 MB), editor, messenger.
    track_bytes: int = 2_000_000
    #: "random": next space uniformly at random; "routine": each user
    #: cycles a fixed personal route (predictable -- lets the Markov
    #: predictor and pre-staging shine).
    mobility_pattern: str = "random"
    #: Enable predictor-driven pre-staging for the run.
    prestaging: bool = False
    prestaging_threshold: float = 0.6
    lan: Optional[LinkSpec] = None
    gateway_delay_ms: float = 5.0
    seed: int = 1


@dataclass
class WorkloadReport:
    """Aggregate results of one workload run."""

    config: WorkloadConfig
    moves_injected: int = 0
    migrations_completed: int = 0
    migrations_failed: int = 0
    bytes_migrated: int = 0
    mean_migration_ms: float = 0.0
    max_migration_ms: float = 0.0
    apps_running_at_end: int = 0
    apps_total: int = 0
    sim_time_ms: float = 0.0
    events_processed: int = 0
    #: Fraction of user moves that triggered a follow-me migration (moves
    #: into the space an app already occupies trigger none).
    follow_rate: float = 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "users": self.config.users,
            "spaces": self.config.spaces,
            "moves": self.moves_injected,
            "migrations": self.migrations_completed,
            "failed": self.migrations_failed,
            "follow_rate": round(self.follow_rate, 2),
            "mean_mig_ms": round(self.mean_migration_ms, 1),
            "max_mig_ms": round(self.max_migration_ms, 1),
            "MB_migrated": round(self.bytes_migrated / 1e6, 2),
        }


class SmartBuildingWorkload:
    """Builds and replays one synthetic workload."""

    def __init__(self, config: Optional[WorkloadConfig] = None,
                 observability=None):
        self.config = config if config is not None else WorkloadConfig()
        self.observability = observability
        self.rng = random.Random(self.config.seed)
        self.deployment: Optional[Deployment] = None
        self.user_locations: Dict[str, str] = {}

    # -- construction ------------------------------------------------------

    def build(self) -> Deployment:
        config = self.config
        d = Deployment(seed=config.seed, observability=self.observability)
        for s in range(config.spaces):
            space = f"space{s}"
            d.add_space(space, lan=config.lan)
            for h in range(config.hosts_per_space):
                d.add_host(f"pc{s}-{h}", space)
            d.add_gateway(f"gw{s}", space, config.gateway_delay_ms)
        # Ring + chords so every pair of spaces is reachable.
        for s in range(config.spaces):
            d.connect_spaces(f"space{s}",
                             f"space{(s + 1) % config.spaces}")
        self.deployment = d
        self._populate()
        return d

    def _populate(self) -> None:
        d = self.deployment
        config = self.config
        builders = [self._music, self._editor, self._messenger]
        for u in range(config.users):
            user = f"user{u}"
            home_space = f"space{u % config.spaces}"
            self.user_locations[user] = home_space
            home_host = f"pc{u % config.spaces}-0"
            app = builders[u % len(builders)](user)
            d.middleware(home_host).launch_application(app)
        d.run_all()

    def _music(self, user: str) -> MusicPlayerApp:
        return MusicPlayerApp.build(
            f"{user}-music", user, track_bytes=self.config.track_bytes,
            user_profile=UserProfile(user,
                                     preferences={"follow_user": True}))

    def _editor(self, user: str) -> EditorApp:
        return EditorApp.build(
            f"{user}-editor", user, initial_text=f"{user}'s notes\n",
            user_profile=UserProfile(user,
                                     preferences={"follow_user": True}))

    def _messenger(self, user: str) -> MessengerApp:
        return MessengerApp.build(
            f"{user}-chat", user, contact="colleague",
            user_profile=UserProfile(user,
                                     preferences={"follow_user": True}))

    # -- replay ------------------------------------------------------------------

    def run(self) -> WorkloadReport:
        """Replay user movement for the configured duration."""
        if self.deployment is None:
            self.build()
        d = self.deployment
        config = self.config
        if config.prestaging:
            d.enable_prestaging(config.prestaging_threshold)
        report = WorkloadReport(config)
        end = d.loop.now + config.duration_ms
        # Schedule each user's moves as a Poisson-ish renewal process.
        for user in list(self.user_locations):
            self._schedule_next_move(user, end, report)
        d.run(until=end)
        d.run_all()
        self._aggregate(report)
        return report

    def _schedule_next_move(self, user: str, end: float,
                            report: WorkloadReport) -> None:
        d = self.deployment
        dwell = self.rng.expovariate(1.0 / self.config.mean_dwell_ms)
        due = d.loop.now + max(dwell, 1_000.0)
        if due >= end:
            return
        d.loop.call_at(due, self._move_user, user, end, report)

    def _move_user(self, user: str, end: float,
                   report: WorkloadReport) -> None:
        d = self.deployment
        previous = self.user_locations[user]
        destination = self._next_space(user, previous)
        self.user_locations[user] = destination
        report.moves_injected += 1
        d.announce_location(user, destination, previous=previous)
        self._schedule_next_move(user, end, report)

    def _next_space(self, user: str, previous: str) -> str:
        config = self.config
        if config.mobility_pattern == "routine":
            # Each user cycles a personal two-space commute: home <-> the
            # next space over (perfectly learnable).
            index = int(user.replace("user", ""))
            home = f"space{index % config.spaces}"
            away = f"space{(index + 1) % config.spaces}"
            return away if previous == home else home
        choices = [f"space{s}" for s in range(config.spaces)
                   if f"space{s}" != previous]
        return self.rng.choice(choices)

    def _aggregate(self, report: WorkloadReport) -> None:
        d = self.deployment
        outcomes = [o for o in d.outcomes.values()]
        completed = [o for o in outcomes if o.completed]
        report.migrations_completed = len(completed)
        report.migrations_failed = sum(1 for o in outcomes if o.failed)
        report.bytes_migrated = sum(o.bytes_transferred for o in completed)
        if completed:
            totals = [o.total_ms for o in completed]
            report.mean_migration_ms = mean(totals)
            report.max_migration_ms = max(totals)
        apps = [a for m in d.middlewares.values()
                for a in m.applications.values()]
        report.apps_total = len(apps)
        report.apps_running_at_end = sum(
            1 for a in apps if a.status is AppStatus.RUNNING)
        report.sim_time_ms = d.loop.now
        report.events_processed = d.loop.processed
        report.follow_rate = (report.migrations_completed
                              / report.moves_injected
                              if report.moves_injected else 0.0)
