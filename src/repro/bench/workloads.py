"""Workload parameters for the evaluation benchmarks."""

from __future__ import annotations

#: The music-file sizes the paper sweeps in Figs. 8-10 (MB).
PAPER_FILE_SIZES_MB = (2.0, 3.0, 4.3, 5.6, 6.5, 7.5)

#: Bandwidths (Mbps) for the crossover ablation (paper testbed = 10).
BANDWIDTH_SWEEP_MBPS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Room fan-out counts for the clone-dispatch ablation.
CLONE_FANOUTS = (1, 2, 4, 8)


def mb(megabytes: float) -> int:
    """Megabytes (decimal, as the paper labels axes) to bytes."""
    return int(megabytes * 1e6)
