"""Workload parameters -- moved to :mod:`repro.city.params`.

This module is a backward-compatibility shim: the paper's sweep
constants now live with the city generator's scale tiers.  Import from
``repro.city`` (or ``repro.city.params``) in new code.
"""

from __future__ import annotations

from repro.city.params import (  # noqa: F401 -- re-exports
    BANDWIDTH_SWEEP_MBPS,
    CLONE_FANOUTS,
    PAPER_FILE_SIZES_MB,
    mb,
)

__all__ = ["BANDWIDTH_SWEEP_MBPS", "CLONE_FANOUTS",
           "PAPER_FILE_SIZES_MB", "mb"]
