"""Benchmark harness: reproduces the paper's evaluation (Figs. 7-10).

- :mod:`repro.bench.harness` -- the two-PC testbed builder and migration
  experiment runner.
- :mod:`repro.bench.scale` -- concurrent-migration and multi-space scale
  benchmarks for the fair-share link model.
- :mod:`repro.bench.workloads` -- the paper's file-size sweep and scenario
  parameters.
- :mod:`repro.bench.reporting` -- figure-style series tables.
"""

from repro.bench.harness import (
    MigrationExperiment,
    SweepRow,
    TestbedConfig,
    build_paper_testbed,
    clone_dispatch_experiment,
    round_trip_experiment,
)
from repro.bench.reporting import format_comparison_table, format_phase_table
from repro.bench.scale import (
    ConcurrentMigrationResult,
    ScaleResult,
    concurrent_migration_experiment,
    scale_benchmark,
)
from repro.bench.workloads import PAPER_FILE_SIZES_MB, mb

__all__ = [
    "ConcurrentMigrationResult",
    "MigrationExperiment",
    "PAPER_FILE_SIZES_MB",
    "ScaleResult",
    "SweepRow",
    "TestbedConfig",
    "build_paper_testbed",
    "clone_dispatch_experiment",
    "concurrent_migration_experiment",
    "format_comparison_table",
    "format_phase_table",
    "mb",
    "round_trip_experiment",
    "scale_benchmark",
]
