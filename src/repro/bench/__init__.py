"""Benchmark harness: reproduces the paper's evaluation (Figs. 7-10).

- :mod:`repro.bench.harness` -- the two-PC testbed builder and migration
  experiment runner.
- :mod:`repro.bench.scale` -- concurrent-migration and multi-space scale
  benchmarks for the fair-share link model.
- :mod:`repro.bench.workloads` -- the paper's file-size sweep and scenario
  parameters.
- :mod:`repro.bench.trajectory` -- standing scenarios emitting the
  schema-versioned ``BENCH_*.json`` perf-trajectory snapshots.
- :mod:`repro.bench.reporting` -- figure-style series tables.
"""

from repro.bench.harness import (
    MigrationExperiment,
    SweepRow,
    TestbedConfig,
    build_paper_testbed,
    clone_dispatch_experiment,
    round_trip_experiment,
)
from repro.bench.reporting import format_comparison_table, format_phase_table
from repro.bench.scale import (
    ConcurrentMigrationResult,
    ScaleResult,
    concurrent_migration_experiment,
    scale_benchmark,
)
from repro.bench.trajectory import (
    BENCH_FORMAT,
    BenchComparison,
    SCENARIOS,
    bench_path,
    compare_bench,
    load_bench,
    run_bench,
    write_bench,
)
from repro.bench.workloads import PAPER_FILE_SIZES_MB, mb

__all__ = [
    "BENCH_FORMAT",
    "BenchComparison",
    "ConcurrentMigrationResult",
    "MigrationExperiment",
    "PAPER_FILE_SIZES_MB",
    "SCENARIOS",
    "ScaleResult",
    "SweepRow",
    "TestbedConfig",
    "bench_path",
    "build_paper_testbed",
    "clone_dispatch_experiment",
    "compare_bench",
    "concurrent_migration_experiment",
    "format_comparison_table",
    "format_phase_table",
    "load_bench",
    "mb",
    "round_trip_experiment",
    "run_bench",
    "scale_benchmark",
    "write_bench",
]
