"""The chaos engine: executes a fault plan against a deployment.

Faults are ordinary events on the deterministic event loop, so a plan
replays identically run-to-run: same plan + seed => byte-identical fault
schedule (:meth:`ChaosEngine.schedule_digest`), trace and outcome tables.

Every fault fires an observability event (``fault.inject`` /
``fault.revert``) and bumps the ``faults.fired`` / ``faults.reverted``
counters; duration faults additionally open a ``fault`` span covering the
degraded window, so a trace shows exactly what broke, when, and for how
long.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    random_plan,
    split_link_target,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import Deployment


@dataclass
class FaultConfig:
    """Fault injection + reliability settings for one deployment.

    ``plan`` wins when given; otherwise ``random_faults > 0`` generates a
    seeded-random plan against the deployment's topology at arm time.
    """

    plan: Optional[FaultPlan] = None
    #: Seed for random plan generation (and recorded for provenance).
    seed: int = 0
    #: Number of seeded-random faults to generate when ``plan`` is None.
    random_faults: int = 0
    #: Horizon of generated random plans, relative to arming.
    horizon_ms: float = 5_000.0
    #: When to arm: "first-migration" (default -- fault times are relative
    #: to the first migration, which is what migration-robustness studies
    #: want), "first-run" (relative to the first ``run``/``run_all``), or
    #: "manual" (call ``deployment.chaos.arm()`` yourself).
    arm: str = "first-migration"
    enabled: bool = True
    # -- reliability hardening applied to the deployment ------------------
    #: Chunked, checkpoint-resumable agent transfers (0 keeps the legacy
    #: single-message transfer).
    transfer_chunk_bytes: int = 0
    #: Sliding-window size for chunked transfers: up to this many chunks in
    #: flight at once (pipelined go-back-N).  1 keeps stop-and-wait, whose
    #: timings are byte-identical to the pre-window engine; > 1 requires
    #: ``transfer_chunk_bytes > 0``.
    transfer_window: int = 1
    #: Overall migration deadline (0 disables).
    migration_deadline_ms: float = 0.0
    #: Per-chunk retry budget under faults (None keeps the cost model's
    #: default of 3).  With exponential backoff, 8 retries give a ~7 s
    #: recovery window -- enough to ride out sub-second link flaps; the
    #: migration deadline is the real upper bound.
    max_transfer_retries: Optional[int] = None
    #: Directory-facilitator lease duration (0 keeps eternal registrations).
    df_lease_ms: float = 0.0
    #: How long lease-renewal ticks keep running after arming (bounded so
    #: ``run_all`` still quiesces).
    lease_horizon_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.arm not in ("first-migration", "first-run", "manual"):
            raise FaultPlanError(
                f"arm must be 'first-migration', 'first-run' or 'manual': "
                f"{self.arm!r}")
        if self.transfer_window < 1:
            raise FaultPlanError(
                f"transfer_window must be >= 1: {self.transfer_window}")
        if self.transfer_window > 1 and self.transfer_chunk_bytes <= 0:
            raise FaultPlanError(
                "transfer_window > 1 requires transfer_chunk_bytes > 0 "
                "(pipelining rides the chunked transfer path)")


@dataclass
class FaultRecord:
    """One entry of the engine's append-only fault log."""

    at_ms: float
    action: str  # "inject" | "revert" | "skip"
    kind: str
    target: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return (f"[{self.at_ms:10.1f} ms] {self.action:<6} {self.kind:<11} "
                f"{self.target}{suffix}")


class ChaosEngine:
    """Schedules and applies one :class:`FaultPlan` on a deployment."""

    def __init__(self, deployment: "Deployment", config: FaultConfig):
        self.deployment = deployment
        self.config = config
        self.plan: Optional[FaultPlan] = config.plan
        self.armed = False
        self.armed_at: float = 0.0
        self.log: List[FaultRecord] = []
        self.faults_fired = 0
        self.faults_reverted = 0
        self.faults_skipped = 0
        self._apply_reliability()

    # -- reliability hardening --------------------------------------------

    def _apply_reliability(self) -> None:
        config = self.config
        cost_model = self.deployment.platform.mobility.cost_model
        if config.transfer_chunk_bytes > 0:
            cost_model.transfer_chunk_bytes = config.transfer_chunk_bytes
        if config.transfer_window > 1:
            cost_model.transfer_window = config.transfer_window
        if config.migration_deadline_ms > 0:
            cost_model.migration_deadline_ms = config.migration_deadline_ms
        if config.max_transfer_retries is not None:
            cost_model.max_transfer_retries = config.max_transfer_retries
        cost_model.backoff_seed = config.seed

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every fault at ``loop.now + spec.at_ms`` (idempotent)."""
        if self.armed or not self.config.enabled:
            return
        self.armed = True
        loop = self.deployment.loop
        self.armed_at = loop.now
        if self.plan is None:
            self.plan = self._generate_plan()
        self.plan.validate()
        for spec in self.plan.sorted_faults():
            loop.call_at(self.armed_at + spec.at_ms, self._fire, spec)
        if self.config.df_lease_ms > 0:
            self.deployment.platform.enable_df_leases(
                self.config.df_lease_ms,
                horizon_ms=self.config.lease_horizon_ms)

    def _generate_plan(self) -> FaultPlan:
        if self.config.random_faults <= 0:
            return FaultPlan(seed=self.config.seed)
        network = self.deployment.network
        topology = self.deployment.topology
        gateways = {g.name for g in topology.gateways}
        return random_plan(
            self.config.seed,
            links=[link.endpoints() for link in network.links],
            hosts=[h.name for h in network.hosts if h.name not in gateways],
            spaces=[s.name for s in topology.spaces
                    if s.gateway_name is not None],
            count=self.config.random_faults,
            horizon_ms=self.config.horizon_ms)

    # -- firing ------------------------------------------------------------

    def _record(self, action: str, spec: FaultSpec, detail: str = "") -> None:
        record = FaultRecord(self.deployment.loop.now, action, spec.kind,
                             spec.target, detail)
        self.log.append(record)
        obs = self.deployment.loop.observability
        if obs is not None:
            obs.tracer.event(f"fault.{action}", category="fault",
                             kind=spec.kind, target=spec.target,
                             detail=detail)
            obs.metrics.counter(f"faults.{action}" if action != "inject"
                                else "faults.fired", kind=spec.kind).inc()
            if obs.hooks:
                # Invariant checkers (repro.simcheck) consume these to
                # whitelist fault-induced anomalies, e.g. a clock_jump's
                # backwards step is a sanctioned monotonicity break.
                obs.emit(f"fault.{action}", kind=spec.kind,
                         target=spec.target, params=dict(spec.params),
                         detail=detail)

    def _fire(self, spec: FaultSpec) -> None:
        try:
            saved = self._apply(spec)
        except _FaultSkipped as exc:
            self.faults_skipped += 1
            self._record("skip", spec, str(exc))
            return
        self.faults_fired += 1
        self._record("inject", spec, self._describe(spec))
        obs = self.deployment.loop.observability
        span = None
        if obs is not None and spec.duration_ms is not None:
            span = obs.tracer.begin_span(
                "fault", category="fault", kind=spec.kind, target=spec.target,
                duration_ms=spec.duration_ms)
        if spec.duration_ms is not None:
            self.deployment.loop.call_later(spec.duration_ms, self._revert,
                                            spec, saved, span)
        elif span is not None:  # pragma: no cover - defensive
            span.end()

    def _revert(self, spec: FaultSpec, saved: Dict[str, Any], span) -> None:
        try:
            self._undo(spec, saved)
        except _FaultSkipped as exc:
            self.faults_skipped += 1
            self._record("skip", spec, f"revert: {exc}")
        else:
            self.faults_reverted += 1
            self._record("revert", spec)
        if span is not None:
            span.end()

    @staticmethod
    def _describe(spec: FaultSpec) -> str:
        if spec.duration_ms is not None:
            return f"for {spec.duration_ms:g} ms"
        return "permanent"

    # -- fault application -------------------------------------------------

    def _apply(self, spec: FaultSpec) -> Dict[str, Any]:
        return getattr(self, f"_apply_{spec.kind}")(spec)

    def _undo(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        getattr(self, f"_undo_{spec.kind}")(spec, saved)

    def _link(self, spec: FaultSpec):
        a, b = split_link_target(spec.target)
        link = self.deployment.network.link_between(a, b)
        if link is None:
            raise _FaultSkipped(f"no link {a!r}<->{b!r}")
        return link

    def _apply_link_down(self, spec: FaultSpec) -> Dict[str, Any]:
        link = self._link(spec)
        drop = bool(spec.params.get("drop_in_flight", False))
        self.deployment.network.disconnect(link.a, link.b,
                                           drop_in_flight=drop)
        return {"a": link.a, "b": link.b,
                "bandwidth_mbps": link.bandwidth_mbps,
                "latency_ms": link.latency_ms, "jitter_ms": link.jitter_ms,
                "loss_rate": link.loss_rate}

    def _undo_link_down(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        network = self.deployment.network
        if network.link_between(saved["a"], saved["b"]) is not None:
            raise _FaultSkipped("link re-appeared before revert")
        network.connect(saved["a"], saved["b"],
                        bandwidth_mbps=saved["bandwidth_mbps"],
                        latency_ms=saved["latency_ms"],
                        jitter_ms=saved["jitter_ms"],
                        loss_rate=saved["loss_rate"])

    def _apply_bandwidth(self, spec: FaultSpec) -> Dict[str, Any]:
        link = self._link(spec)
        saved = {"bandwidth_mbps": link.bandwidth_mbps}
        if "bandwidth_mbps" in spec.params:
            new_mbps = float(spec.params["bandwidth_mbps"])
        else:
            new_mbps = link.bandwidth_mbps * float(spec.params["factor"])
        if new_mbps <= 0:
            raise _FaultSkipped("degraded bandwidth must stay positive")
        # set_bandwidth settles in-progress fair-share service at the old
        # rate before the change, so concurrent bulk transfers slow down
        # (or speed up on revert) mid-flight instead of keeping stale
        # finish times.
        link.set_bandwidth(new_mbps, now=self.deployment.loop.now)
        return saved

    def _undo_bandwidth(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        self._link(spec).set_bandwidth(saved["bandwidth_mbps"],
                                       now=self.deployment.loop.now)

    def _apply_loss(self, spec: FaultSpec) -> Dict[str, Any]:
        link = self._link(spec)
        saved = {"loss_rate": link.loss_rate}
        link.loss_rate = float(spec.params["loss_rate"])
        return saved

    def _undo_loss(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        self._link(spec).loss_rate = saved["loss_rate"]

    def _host(self, name: str):
        network = self.deployment.network
        if not network.has_host(name):
            raise _FaultSkipped(f"unknown host {name!r}")
        return network.host(name)

    def _apply_host_crash(self, spec: FaultSpec) -> Dict[str, Any]:
        host = self._host(spec.target)
        if not host.online:
            raise _FaultSkipped(f"host {host.name!r} already offline")
        host.online = False
        return {"host": host.name}

    def _undo_host_crash(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        self._host(saved["host"]).online = True

    def _apply_partition(self, spec: FaultSpec) -> Dict[str, Any]:
        try:
            space = self.deployment.topology.space(spec.target)
        except Exception:
            raise _FaultSkipped(f"unknown space {spec.target!r}") from None
        if space.gateway_name is None:
            raise _FaultSkipped(f"space {spec.target!r} has no gateway")
        gateway = self._host(space.gateway_name)
        if not gateway.online:
            raise _FaultSkipped(f"gateway {gateway.name!r} already offline")
        gateway.online = False
        return {"host": gateway.name}

    def _undo_partition(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        self._host(saved["host"]).online = True

    def _apply_clock_jump(self, spec: FaultSpec) -> Dict[str, Any]:
        host = self._host(spec.target)
        jump = float(spec.params["jump_ms"])
        host.clock.skew_ms += jump
        return {"jump_ms": jump}

    def _undo_clock_jump(self, spec: FaultSpec, saved: Dict[str, Any]) -> None:
        self._host(spec.target).clock.skew_ms -= saved["jump_ms"]

    # -- introspection -----------------------------------------------------

    def schedule_digest(self) -> str:
        """Canonical text form of the fault log (one line per record).

        Two runs of the same plan + seed produce byte-identical digests --
        the determinism acceptance check.
        """
        return "\n".join(
            f"{r.at_ms:.6f} {r.action} {r.kind} {r.target} {r.detail}"
            for r in self.log)

    def stats(self) -> Dict[str, int]:
        return {"faults_fired": self.faults_fired,
                "faults_reverted": self.faults_reverted,
                "faults_skipped": self.faults_skipped}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        planned = len(self.plan) if self.plan is not None else 0
        return (f"<ChaosEngine armed={self.armed} planned={planned} "
                f"fired={self.faults_fired}>")


class _FaultSkipped(Exception):
    """Internal: the fault's target is not applicable right now."""
