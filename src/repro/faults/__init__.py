"""Deterministic fault injection & reliability layer (``repro.faults``).

The paper's premise is migration in a *pervasive* environment: devices
roam, links flap, hosts disappear mid-transfer.  This package turns the
healthy two-PC testbed into a robustness testbed:

- :class:`FaultPlan` / :class:`FaultSpec` -- a scripted (or seeded-random)
  schedule of faults, serializable to JSON (``--faults plan.json``), and
- :class:`ChaosEngine` -- executes a plan against a
  :class:`~repro.core.middleware.Deployment`'s network/topology on the
  simulated clock, emitting an observability event per fault so traces
  show exactly what broke and when.

Everything is deterministic: the same plan + seed produces a byte-identical
fault schedule (see :meth:`ChaosEngine.schedule_digest`), and a deployment
built without a :class:`FaultConfig` behaves exactly as before.
"""

from repro.faults.engine import ChaosEngine, FaultConfig, FaultRecord
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    link_target,
    random_plan,
)

__all__ = [
    "FAULT_KINDS",
    "ChaosEngine",
    "FaultConfig",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "FaultSpec",
    "link_target",
    "random_plan",
]
