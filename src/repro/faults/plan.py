"""Fault taxonomy, plan files and seeded-random plan generation.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec`s.  Times are
**relative to the instant the engine is armed** (by default the first
migration -- see :class:`~repro.faults.engine.FaultConfig.arm`), so one
plan file stresses any scenario regardless of how long its warm-up runs.

The JSON wire format (``--faults plan.json``)::

    {
      "format": "repro.faults.plan/1",
      "seed": 7,
      "faults": [
        {"at_ms": 20.0, "kind": "link_down", "target": "host1|host2",
         "duration_ms": 400.0, "params": {"drop_in_flight": true}},
        {"at_ms": 0.0, "kind": "loss", "target": "host1|host2",
         "duration_ms": null, "params": {"loss_rate": 0.2}}
      ]
    }

Determinism guarantee: plans are plain data; :func:`random_plan` derives a
plan from ``(seed, targets)`` alone, so identical inputs always yield an
identical plan, and the engine replays any plan identically run-to-run.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

PLAN_FORMAT = "repro.faults.plan/1"

#: Every fault kind the engine can apply, with the target each expects.
FAULT_KINDS: Dict[str, str] = {
    "link_down": "link",     # cut a link; params: drop_in_flight (bool)
    "bandwidth": "link",     # degrade; params: factor OR bandwidth_mbps
    "loss": "link",          # packet loss; params: loss_rate
    "host_crash": "host",    # host goes offline (restart = revert)
    "partition": "space",    # crash the space's gateway
    "clock_jump": "host",    # params: jump_ms added to the host clock skew
}


class FaultPlanError(ValueError):
    """Raised on malformed plans or plan files."""


def link_target(a: str, b: str) -> str:
    """Canonical link target string (order-independent)."""
    return "|".join(sorted((a, b)))


def split_link_target(target: str) -> Tuple[str, str]:
    parts = target.replace("<->", "|").split("|")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise FaultPlanError(f"link target must be 'hostA|hostB': {target!r}")
    return parts[0], parts[1]


@dataclass
class FaultSpec:
    """One scheduled fault.

    ``at_ms`` is relative to engine arming; ``duration_ms`` of ``None``
    means the fault is never reverted (a permanent degradation).
    """

    at_ms: float
    kind: str
    target: str
    duration_ms: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> "FaultSpec":
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")
        if self.at_ms < 0:
            raise FaultPlanError(f"fault time must be >= 0: {self.at_ms}")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise FaultPlanError(
                f"fault duration must be positive: {self.duration_ms}")
        if not self.target:
            raise FaultPlanError("fault target must be non-empty")
        if FAULT_KINDS[self.kind] == "link":
            split_link_target(self.target)
        if self.kind == "loss":
            rate = self.params.get("loss_rate")
            if rate is None or not 0.0 <= float(rate) < 1.0:
                raise FaultPlanError(
                    f"loss fault needs params.loss_rate in [0, 1): {rate!r}")
        if self.kind == "bandwidth":
            if ("factor" not in self.params
                    and "bandwidth_mbps" not in self.params):
                raise FaultPlanError(
                    "bandwidth fault needs params.factor or "
                    "params.bandwidth_mbps")
        if self.kind == "clock_jump" and "jump_ms" not in self.params:
            raise FaultPlanError("clock_jump fault needs params.jump_ms")
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"at_ms": self.at_ms, "kind": self.kind, "target": self.target,
                "duration_ms": self.duration_ms, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        try:
            return cls(at_ms=float(data["at_ms"]), kind=str(data["kind"]),
                       target=str(data["target"]),
                       duration_ms=(None if data.get("duration_ms") is None
                                    else float(data["duration_ms"])),
                       params=dict(data.get("params", {}))).validate()
        except KeyError as exc:
            raise FaultPlanError(f"fault spec missing field {exc}") from None


@dataclass
class FaultPlan:
    """An ordered, validated fault schedule."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def validate(self) -> "FaultPlan":
        for spec in self.faults:
            spec.validate()
        return self

    def add(self, spec: FaultSpec) -> FaultSpec:
        self.faults.append(spec.validate())
        return spec

    def sorted_faults(self) -> List[FaultSpec]:
        """Faults in firing order (stable for equal times)."""
        return sorted(self.faults, key=lambda s: s.at_ms)

    @property
    def horizon_ms(self) -> float:
        """Time (relative to arming) after which no fault fires/reverts."""
        horizon = 0.0
        for spec in self.faults:
            end = spec.at_ms + (spec.duration_ms or 0.0)
            horizon = max(horizon, end)
        return horizon

    def __len__(self) -> int:
        return len(self.faults)

    # -- wire format --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"format": PLAN_FORMAT, "seed": self.seed,
                "faults": [s.to_dict() for s in self.faults]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        fmt = data.get("format", PLAN_FORMAT)
        if fmt != PLAN_FORMAT:
            raise FaultPlanError(f"unsupported plan format {fmt!r}")
        return cls(
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", [])],
            seed=int(data.get("seed", 0)),
        ).validate()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"plan is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise FaultPlanError("plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def random_plan(seed: int,
                links: Sequence[Union[str, Tuple[str, str]]],
                hosts: Sequence[str] = (),
                spaces: Sequence[str] = (),
                count: int = 4,
                horizon_ms: float = 5_000.0,
                kinds: Optional[Sequence[str]] = None) -> FaultPlan:
    """Generate a deterministic seeded-random plan against known targets.

    The same ``(seed, targets, count, horizon_ms, kinds)`` always produces
    the same plan -- the RNG is local and seeded solely from ``seed``.
    Only kinds with at least one viable target are drawn.
    """
    rng = random.Random(seed)
    link_targets = [t if isinstance(t, str) else link_target(*t)
                    for t in links]
    pool: List[str] = []
    for kind in (kinds if kinds is not None else sorted(FAULT_KINDS)):
        needs = FAULT_KINDS.get(kind)
        if needs is None:
            raise FaultPlanError(f"unknown fault kind {kind!r}")
        if ((needs == "link" and link_targets)
                or (needs == "host" and hosts)
                or (needs == "space" and spaces)):
            pool.append(kind)
    if not pool:
        raise FaultPlanError("no viable fault kinds for the given targets")
    plan = FaultPlan(seed=seed)
    for _ in range(count):
        kind = rng.choice(pool)
        at = rng.uniform(0.0, horizon_ms)
        duration = rng.uniform(horizon_ms * 0.02, horizon_ms * 0.2)
        if kind in ("link_down", "bandwidth", "loss"):
            target = rng.choice(link_targets)
        elif kind == "partition":
            target = rng.choice(list(spaces))
        else:
            target = rng.choice(list(hosts))
        params: Dict[str, Any] = {}
        if kind == "link_down":
            params["drop_in_flight"] = rng.random() < 0.5
        elif kind == "bandwidth":
            params["factor"] = round(rng.uniform(0.05, 0.5), 3)
        elif kind == "loss":
            params["loss_rate"] = round(rng.uniform(0.05, 0.4), 3)
        elif kind == "clock_jump":
            params["jump_ms"] = round(rng.uniform(-500.0, 500.0), 3)
        plan.add(FaultSpec(at_ms=round(at, 3), kind=kind, target=target,
                           duration_ms=round(duration, 3), params=params))
    return plan
