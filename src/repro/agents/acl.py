"""FIPA-ACL style agent messages.

Agents "communicate through message passing" (paper §4.1); we model the
FIPA-ACL envelope JADE uses: a performative, sender/receiver agent ids
(``name@host``), free-form content, and the conversation bookkeeping fields
(``conversation_id``, ``reply_with``, ``in_reply_to``) the interaction
diagram (Fig. 4) relies on.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple


class Performative(enum.Enum):
    """The FIPA performatives the middleware uses."""

    INFORM = "inform"
    REQUEST = "request"
    QUERY = "query"
    AGREE = "agree"
    REFUSE = "refuse"
    CONFIRM = "confirm"
    FAILURE = "failure"
    PROPOSE = "propose"
    ACCEPT_PROPOSAL = "accept-proposal"
    REJECT_PROPOSAL = "reject-proposal"
    SUBSCRIBE = "subscribe"
    CANCEL = "cancel"


def split_aid(aid: str) -> Tuple[str, str]:
    """Split ``name@host`` into its parts."""
    name, sep, host = aid.partition("@")
    if not sep or not name or not host:
        raise ValueError(f"malformed agent id {aid!r} (want name@host)")
    return name, host


_reply_ids = itertools.count(1)


@dataclass
class ACLMessage:
    """One agent-to-agent message."""

    performative: Performative
    sender: str = ""
    receivers: List[str] = field(default_factory=list)
    content: Any = None
    conversation_id: str = ""
    reply_with: str = ""
    in_reply_to: str = ""
    protocol: str = ""
    ontology: str = ""
    #: Explicit payload size for transfer-cost accounting; when zero the
    #: transport estimates from the content.
    size_bytes: int = 0
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.performative, str):
            self.performative = Performative(self.performative)

    def add_receiver(self, aid: str) -> "ACLMessage":
        split_aid(aid)  # validate
        self.receivers.append(aid)
        return self

    def with_reply_id(self) -> "ACLMessage":
        """Assign a fresh ``reply_with`` token for request/response pairing."""
        if not self.reply_with:
            self.reply_with = f"rw-{next(_reply_ids)}"
        return self

    def create_reply(self, performative: Performative,
                     content: Any = None) -> "ACLMessage":
        """A reply addressed back to the sender with conversation fields
        threaded through."""
        if not self.sender:
            raise ValueError("cannot reply to a message without a sender")
        return ACLMessage(
            performative=performative,
            receivers=[self.sender],
            content=content,
            conversation_id=self.conversation_id,
            in_reply_to=self.reply_with,
            protocol=self.protocol,
            ontology=self.ontology,
        )

    def matches(self, performative: Optional[Performative] = None,
                sender: Optional[str] = None,
                conversation_id: Optional[str] = None,
                in_reply_to: Optional[str] = None,
                protocol: Optional[str] = None) -> bool:
        """Template matching for selective receive (JADE MessageTemplate)."""
        if performative is not None and self.performative is not performative:
            return False
        if sender is not None and self.sender != sender:
            return False
        if conversation_id is not None and self.conversation_id != conversation_id:
            return False
        if in_reply_to is not None and self.in_reply_to != in_reply_to:
            return False
        if protocol is not None and self.protocol != protocol:
            return False
        return True

    def copy(self) -> "ACLMessage":
        return replace(self, receivers=list(self.receivers))

    def __str__(self) -> str:
        return (f"<ACL {self.performative.value} {self.sender} -> "
                f"{','.join(self.receivers)} conv={self.conversation_id!r}>")
