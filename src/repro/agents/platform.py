"""Agent containers and the platform AMS / message transport.

One :class:`AgentContainer` runs per host (as in JADE); the
:class:`AgentPlatform` spans the deployment, routing ACL messages between
containers over the simulated network, tracking where each agent lives
(AMS white pages), and hosting the yellow-pages
:class:`~repro.agents.directory.DirectoryFacilitator`.

Messages to agents that are mid-migration are buffered at the destination
container and flushed on check-in, so conversations survive a move.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.agents.acl import ACLMessage, split_aid
from repro.agents.agent import Agent
from repro.agents.directory import DirectoryFacilitator
from repro.agents.serialization import SerializationError, deep_size_bytes
from repro.net.kernel import EventLoop
from repro.net.simnet import Host, Message, Network, register_bulk_protocol

ACL_PROTOCOL = "agents.acl"
TRANSFER_PROTOCOL = "agents.transfer"
# Agent state transfers are bulk traffic: chunks of one migration queue
# FIFO within their flow, concurrent migrations share link bandwidth
# fairly, and ACL control messages never wait behind them.
register_bulk_protocol(TRANSFER_PROTOCOL)

#: Fallback wire size when message content cannot be sized.
_DEFAULT_CONTENT_SIZE = 256
#: Envelope overhead per ACL message.
_ENVELOPE_SIZE = 128


class PlatformError(RuntimeError):
    """Raised on invalid platform operations."""


def estimate_message_size(message: ACLMessage) -> int:
    """Wire size of an ACL message: explicit, else deep-sized content."""
    if message.size_bytes > 0:
        return message.size_bytes + _ENVELOPE_SIZE
    try:
        return deep_size_bytes(message.content) + _ENVELOPE_SIZE
    except SerializationError:
        return _DEFAULT_CONTENT_SIZE + _ENVELOPE_SIZE


class AgentContainer:
    """The per-host agent runtime."""

    def __init__(self, platform: "AgentPlatform", host: Host):
        self.platform = platform
        self.host = host
        self._agents: Dict[str, Agent] = {}
        # Messages for agents expected to arrive (mid-migration buffering).
        self._early_messages: Dict[str, List[ACLMessage]] = {}
        host.register_handler(ACL_PROTOCOL, self._on_network_message)

    @property
    def host_name(self) -> str:
        return self.host.name

    @property
    def loop(self) -> EventLoop:
        return self.host.loop

    @property
    def mobility(self):
        return self.platform.mobility

    # -- agent management ----------------------------------------------------

    def create_agent(self, agent_class: Type[Agent], local_name: str,
                     *args, **kwargs) -> Agent:
        """Instantiate, register and start an agent in this container."""
        agent = agent_class(local_name, *args, **kwargs)
        self.add_agent(agent)
        agent.do_activate()
        return agent

    def add_agent(self, agent: Agent, flush_early: bool = True) -> Agent:
        """Register an (unstarted or checked-in) agent with this container."""
        if agent.local_name in self._agents:
            raise PlatformError(
                f"container {self.host_name!r} already has an agent named "
                f"{agent.local_name!r}")
        self.platform._register_location(agent.local_name, self.host_name)
        agent.container = self
        self._agents[agent.local_name] = agent
        if flush_early:
            for message in self._early_messages.pop(agent.local_name, []):
                agent.post(message)
        return agent

    def remove_agent(self, agent: Agent) -> None:
        if self._agents.get(agent.local_name) is agent:
            del self._agents[agent.local_name]
            self.platform._unregister_location(agent.local_name,
                                               self.host_name)
        agent.container = None

    def agent(self, local_name: str) -> Agent:
        try:
            return self._agents[local_name]
        except KeyError:
            raise PlatformError(
                f"no agent {local_name!r} on host {self.host_name!r}") from None

    def has_agent(self, local_name: str) -> bool:
        return local_name in self._agents

    @property
    def agents(self) -> List[Agent]:
        return list(self._agents.values())

    # -- message delivery ---------------------------------------------------------

    def post_to(self, local_name: str, message: ACLMessage) -> None:
        """Deliver locally, or buffer briefly if the agent is in flight."""
        agent = self._agents.get(local_name)
        obs = self.loop.observability
        if obs is not None:
            obs.tracer.event(
                "acl.receive", category="acl", host=self.host,
                agent=local_name, performative=message.performative.value,
                buffered=agent is None)
        if agent is not None:
            agent.post(message)
        else:
            self._early_messages.setdefault(local_name, []).append(message)
            self.platform.undelivered_buffered += 1

    def _on_network_message(self, net_message: Message) -> None:
        acl: ACLMessage = net_message.payload
        local_name, _ = split_aid(acl.receivers[0])
        self.post_to(local_name, acl)


class AgentPlatform:
    """The deployment-wide agent platform (AMS + transport + DF)."""

    def __init__(self, network: Network):
        self.network = network
        self.loop = network.loop
        self._containers: Dict[str, AgentContainer] = {}
        # AMS white pages: local agent name -> host name.
        self._locations: Dict[str, str] = {}
        self.df = DirectoryFacilitator(clock=lambda: self.loop.now)
        self.messages_sent = 0
        self.messages_failed = 0
        self.undelivered_buffered = 0
        self._lease_until = 0.0
        from repro.agents.mobility import MobilityService
        self.mobility = MobilityService(self)

    # -- DF leases ---------------------------------------------------------------

    def enable_df_leases(self, lease_ms: float,
                         horizon_ms: float = 60_000.0) -> None:
        """Expire yellow-pages entries of agents that stop renewing.

        Containers on *online* hosts renew their agents' registrations every
        ``lease_ms / 2``; a crashed host stops renewing, so its agents fall
        out of the directory within one lease.  Renewal ticks stop
        ``horizon_ms`` after enabling so ``run_until_idle`` still quiesces.

        Expiry itself is timer-driven: the DF keeps a timer armed at the
        earliest lease deadline, so a crashed host's entries drop at their
        expiry sim-time -- not at the next search or renewal tick -- and
        each one emits a ``fault.lease_expired`` hook event.
        """
        if lease_ms <= 0:
            raise PlatformError(f"lease_ms must be positive: {lease_ms}")
        self.df.default_lease_ms = lease_ms
        self.df.schedule = self.loop.call_later
        self.df.on_expired = self._on_df_lease_expired
        self.df.release_all()
        self._lease_until = self.loop.now + horizon_ms
        interval = lease_ms / 2
        self.loop.call_later(interval, self._lease_tick, interval)

    def _lease_tick(self, interval: float) -> None:
        for container in self.containers:
            if not container.host.online:
                continue  # a crashed host cannot renew its agents' leases
            for agent in container.agents:
                self.df.renew_owner(
                    f"{agent.local_name}@{container.host_name}")
        self.df.sweep_expired()
        if self.loop.now + interval <= self._lease_until:
            self.loop.call_later(interval, self._lease_tick, interval)
        else:
            # Renewals are over: freeze the directory instead of letting
            # the expiry timer reap every live host's entries.
            self.df.disarm()

    def _on_df_lease_expired(self, service) -> None:
        obs = self.loop.observability
        if obs is None:
            return
        obs.metrics.counter("df.lease_expired").inc()
        if obs.hooks:
            obs.emit("fault.lease_expired", scope="df", name=service.name,
                     service_type=service.service_type, owner=service.owner,
                     expired_at=self.loop.now)

    # -- containers -----------------------------------------------------------

    def create_container(self, host_name: str) -> AgentContainer:
        if host_name in self._containers:
            raise PlatformError(f"host {host_name!r} already has a container")
        container = AgentContainer(self, self.network.host(host_name))
        self._containers[host_name] = container
        self.mobility.attach(container)
        return container

    def container(self, host_name: str) -> AgentContainer:
        try:
            return self._containers[host_name]
        except KeyError:
            raise PlatformError(f"no container on host {host_name!r}") from None

    def has_container(self, host_name: str) -> bool:
        return host_name in self._containers

    @property
    def containers(self) -> List[AgentContainer]:
        return list(self._containers.values())

    # -- AMS white pages ---------------------------------------------------------

    def _register_location(self, local_name: str, host_name: str) -> None:
        existing = self._locations.get(local_name)
        if existing is not None and existing != host_name:
            raise PlatformError(
                f"agent name {local_name!r} already in use on {existing!r}")
        self._locations[local_name] = host_name

    def _unregister_location(self, local_name: str, host_name: str) -> None:
        if self._locations.get(local_name) == host_name:
            del self._locations[local_name]

    def where_is(self, name: str) -> Optional[str]:
        """Host of an agent by local name or full aid (None if unknown)."""
        local = name.split("@", 1)[0]
        return self._locations.get(local)

    def agent(self, name: str) -> Agent:
        """Resolve an agent object by local name or aid."""
        host = self.where_is(name)
        if host is None:
            raise PlatformError(f"unknown agent {name!r}")
        return self.container(host).agent(name.split("@", 1)[0])

    @property
    def agents(self) -> List[Agent]:
        return [a for c in self.containers for a in c.agents]

    # -- transport -----------------------------------------------------------------

    def send_message(self, message: ACLMessage) -> None:
        """Route an ACL message to each receiver (unicast per receiver).

        Local receivers get same-instant loop delivery; remote ones ride the
        simulated network and pay latency + bandwidth for the content size.
        """
        if not message.receivers:
            raise PlatformError(f"message has no receivers: {message}")
        if not message.sender:
            raise PlatformError(f"message has no sender: {message}")
        message.sent_at = self.loop.now
        _, sender_host = split_aid(message.sender)
        obs = self.loop.observability
        for receiver in message.receivers:
            local_name, receiver_host = split_aid(receiver)
            # The AMS may know the agent moved; prefer its current location.
            current = self.where_is(local_name)
            target_host = current if current is not None else receiver_host
            copy = message.copy()
            copy.receivers = [f"{local_name}@{target_host}"]
            self.messages_sent += 1
            if obs is not None:
                obs.metrics.counter(
                    "acl.messages",
                    performative=message.performative.value).inc()
                obs.tracer.event(
                    "acl.send", category="acl", sender=message.sender,
                    receiver=copy.receivers[0],
                    performative=message.performative.value,
                    size_bytes=estimate_message_size(copy),
                    remote=target_host != sender_host)
            if target_host == sender_host:
                container = self.container(target_host)
                self.loop.call_soon(container.post_to, local_name, copy)
            else:
                if target_host not in self._containers:
                    self.messages_failed += 1
                    continue
                self.network.send(sender_host, target_host, ACL_PROTOCOL,
                                  copy, estimate_message_size(copy))
