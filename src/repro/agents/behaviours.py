"""Cooperative agent behaviours (the JADE behaviour model).

A behaviour encapsulates one strand of an agent's activity.  The container
steps an agent by running each of its non-blocked behaviours once; a
behaviour that has nothing to do MUST call :meth:`Behaviour.block` (wake on
next message, or after a timeout), otherwise it spins.

Provided schedulers:

- :class:`OneShotBehaviour` -- runs ``action`` once.
- :class:`CyclicBehaviour` -- runs forever until removed (message pumps).
- :class:`WakerBehaviour` -- runs once after a delay.
- :class:`TickerBehaviour` -- runs periodically.
- :class:`SequentialBehaviour` -- children run back-to-back.
- :class:`FSMBehaviour` -- children as states with exit-code transitions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.agent import Agent


class Behaviour:
    """Base class; subclass and implement :meth:`action` and :meth:`done`."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.agent: Optional["Agent"] = None
        self.blocked = False
        self._block_timer = None
        #: Exit code consumed by FSMBehaviour transitions.
        self.exit_code: int = 0
        self.runs = 0

    # -- lifecycle hooks ----------------------------------------------------

    def on_start(self) -> None:
        """Called once when the behaviour is first scheduled."""

    def action(self) -> None:
        """One unit of work; must not loop forever."""
        raise NotImplementedError

    def done(self) -> bool:
        """True when the behaviour is complete and should be removed."""
        raise NotImplementedError

    def on_end(self) -> None:
        """Called after ``done()`` turns true and the behaviour is removed."""

    # -- blocking -------------------------------------------------------------

    def block(self, timeout_ms: Optional[float] = None) -> None:
        """Park until the next message arrives (or the timeout fires)."""
        self.blocked = True
        if timeout_ms is not None and self.agent is not None:
            loop = self.agent.loop
            self._block_timer = loop.call_later(timeout_ms, self._unblock_and_wake)

    def _unblock_and_wake(self) -> None:
        self._block_timer = None
        if self.blocked:
            self.blocked = False
            if self.agent is not None:
                self.agent.schedule_step()

    def restart(self) -> None:
        """Clear the blocked flag (a message arrived)."""
        self.blocked = False
        if self._block_timer is not None:
            self._block_timer.cancel()
            self._block_timer = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class OneShotBehaviour(Behaviour):
    """Runs ``action`` exactly once."""

    def __init__(self, action: Optional[Callable[[], None]] = None,
                 name: str = ""):
        super().__init__(name)
        self._action = action
        self._ran = False

    def action(self) -> None:
        if self._action is not None:
            self._action()
        self._ran = True

    def done(self) -> bool:
        return self._ran


class CyclicBehaviour(Behaviour):
    """Runs until explicitly removed; the workhorse for message pumps.

    Subclasses implement :meth:`action`; a typical pump does::

        msg = self.agent.receive()
        if msg is None:
            self.block()
            return
        handle(msg)
    """

    def __init__(self, action: Optional[Callable[[], None]] = None,
                 name: str = ""):
        super().__init__(name)
        self._action = action

    def action(self) -> None:
        if self._action is None:
            raise NotImplementedError("pass action= or subclass")
        self._action()

    def done(self) -> bool:
        return False


class WakerBehaviour(Behaviour):
    """Runs ``on_wake`` once, ``delay_ms`` after scheduling."""

    def __init__(self, delay_ms: float, on_wake: Optional[Callable[[], None]] = None,
                 name: str = ""):
        super().__init__(name)
        self.delay_ms = float(delay_ms)
        self._on_wake = on_wake
        self._armed = False
        self._woke = False

    def on_start(self) -> None:
        self.block()
        if self.agent is not None:
            self.agent.loop.call_later(self.delay_ms, self._arm)

    def _arm(self) -> None:
        self._armed = True
        self.restart()
        if self.agent is not None:
            self.agent.schedule_step()

    def action(self) -> None:
        if not self._armed:
            self.block()
            return
        self.on_wake()
        self._woke = True

    def on_wake(self) -> None:
        if self._on_wake is not None:
            self._on_wake()

    def done(self) -> bool:
        return self._woke


class TickerBehaviour(Behaviour):
    """Runs ``on_tick`` every ``period_ms`` until stopped."""

    def __init__(self, period_ms: float, on_tick: Optional[Callable[[], None]] = None,
                 name: str = ""):
        super().__init__(name)
        if period_ms <= 0:
            raise ValueError("period must be positive")
        self.period_ms = float(period_ms)
        self._on_tick = on_tick
        self._due = False
        self._stopped = False

    def on_start(self) -> None:
        self.block()
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self.agent is not None and not self._stopped:
            self.agent.loop.call_later(self.period_ms, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._due = True
        self.restart()
        if self.agent is not None:
            self.agent.schedule_step()

    def action(self) -> None:
        if not self._due:
            self.block()
            return
        self._due = False
        self.on_tick()
        if not self._stopped:
            self.block()
            self._schedule_tick()

    def on_tick(self) -> None:
        if self._on_tick is not None:
            self._on_tick()

    def stop(self) -> None:
        self._stopped = True

    def done(self) -> bool:
        return self._stopped


class SequentialBehaviour(Behaviour):
    """Runs child behaviours one after another.

    The composite's blocked state *is* the active child's blocked state, so
    a child unblocked by its own timer (Waker/Ticker) transparently
    unblocks the sequence.
    """

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._children: List[Behaviour] = []
        self._index = 0
        self._started_current = False

    @property
    def blocked(self) -> bool:  # type: ignore[override]
        child = self.current
        if child is not None and self._started_current:
            return child.blocked
        return False

    @blocked.setter
    def blocked(self, value: bool) -> None:
        # Composites only ever block on behalf of a child; the base
        # class's block()/restart() writes are absorbed here.
        pass

    def add_child(self, child: Behaviour) -> "SequentialBehaviour":
        self._children.append(child)
        return self

    @property
    def current(self) -> Optional[Behaviour]:
        if self._index < len(self._children):
            return self._children[self._index]
        return None

    def on_start(self) -> None:
        for child in self._children:
            child.agent = self.agent

    def action(self) -> None:
        child = self.current
        if child is None:
            return
        if not self._started_current:
            child.agent = self.agent
            child.on_start()
            self._started_current = True
        if child.blocked:
            self.block()
            return
        child.action()
        if child.done():
            child.on_end()
            self._index += 1
            self._started_current = False
        elif child.blocked:
            self.block()

    def restart(self) -> None:
        super().restart()
        child = self.current
        if child is not None:
            child.restart()

    def done(self) -> bool:
        return self._index >= len(self._children)


class FSMBehaviour(Behaviour):
    """Children as named states; transitions keyed by child exit codes.

    Default transitions (event ``None``) fire for any exit code without an
    explicit transition.  States registered as final end the FSM.  As with
    :class:`SequentialBehaviour`, the FSM's blocked state mirrors the
    active state's, so timer-driven children unblock it transparently.
    """

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._states: Dict[str, Behaviour] = {}
        self._transitions: Dict[Tuple[str, Optional[int]], str] = {}
        self._final: set = set()
        self._initial: Optional[str] = None
        self._current: Optional[str] = None
        self._started_current = False
        self._finished = False
        self.visited: List[str] = []

    @property
    def blocked(self) -> bool:  # type: ignore[override]
        if self._current is not None and self._started_current:
            return self._states[self._current].blocked
        return False

    @blocked.setter
    def blocked(self, value: bool) -> None:
        pass  # composites only block on behalf of their active child

    def register_state(self, name: str, behaviour: Behaviour,
                       initial: bool = False, final: bool = False) -> None:
        if name in self._states:
            raise ValueError(f"duplicate state {name!r}")
        self._states[name] = behaviour
        if initial:
            if self._initial is not None:
                raise ValueError("initial state already set")
            self._initial = name
        if final:
            self._final.add(name)

    def register_transition(self, source: str, target: str,
                            event: Optional[int] = None) -> None:
        for state in (source, target):
            if state not in self._states:
                raise ValueError(f"unknown state {state!r}")
        self._transitions[(source, event)] = target

    def on_start(self) -> None:
        if self._initial is None:
            raise ValueError("FSM has no initial state")
        self._current = self._initial

    def action(self) -> None:
        if self._finished or self._current is None:
            return
        child = self._states[self._current]
        if not self._started_current:
            child.agent = self.agent
            child.on_start()
            self._started_current = True
            self.visited.append(self._current)
        if child.blocked:
            self.block()
            return
        child.action()
        if child.done():
            child.on_end()
            self._started_current = False
            if self._current in self._final:
                self._finished = True
                return
            key = (self._current, child.exit_code)
            target = self._transitions.get(key)
            if target is None:
                target = self._transitions.get((self._current, None))
            if target is None:
                raise RuntimeError(
                    f"FSM {self.name!r}: no transition from "
                    f"{self._current!r} on exit code {child.exit_code}")
            self._current = target
        elif child.blocked:
            self.block()

    def restart(self) -> None:
        super().restart()
        if self._current is not None and self._started_current:
            self._states[self._current].restart()

    def done(self) -> bool:
        return self._finished
