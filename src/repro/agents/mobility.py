"""Mobile-agent migration: check-out, transfer, check-in, clone.

"Mobile agent will wrap the corresponding components, check out from the
current site, check in at the destination, inform the coordinator ... and
resume the execution." (paper §4.3.)

The protocol (weak mobility, as in JADE):

1. **check-out** -- the agent enters TRANSIT, its plain-data state is
   serialized into an :class:`~repro.agents.serialization.AgentSnapshot`
   (CPU cost proportional to size, scaled by the host's ``cpu_factor``),
   and it is deregistered from the source container.
2. **transfer** -- the snapshot (plus any queued messages) rides the
   simulated network, paying latency + size/bandwidth per hop.
3. **check-in** -- the destination container deserializes (CPU cost again),
   registers a fresh instance, re-activates it and calls ``after_move``.

``clone`` is identical except the original stays active and the copy gets a
new name and ``after_clone`` -- the primitive under clone-dispatch mobility.

Host-local clock stamps (``t1``..``t4`` style) are recorded on the results
so experiments can apply the paper's Fig. 7 round-trip correction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.agents.acl import ACLMessage
from repro.agents.agent import Agent, AgentError, AgentState
from repro.agents.serialization import AgentSnapshot
from repro.net.simnet import HostOfflineError, UnreachableHostError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.platform import AgentContainer, AgentPlatform

TRANSFER_PROTOCOL = "agents.transfer"

#: Network errors worth retrying: a crashed host may restart, a partition
#: may heal.  Anything else (bad payload, unknown host) fails fast.
RETRYABLE_SEND_ERRORS = (HostOfflineError, UnreachableHostError)


@dataclass
class CostModel:
    """CPU cost of (de)serialization, scaled by each host's cpu_factor.

    Defaults are calibrated so the two-PC / 10 Mbps testbed of the paper
    lands in the right regime: tens of ms of fixed agent overhead plus a
    size-proportional term.
    """

    checkout_base_ms: float = 60.0
    serialize_ms_per_mb: float = 40.0
    checkin_base_ms: float = 100.0
    deserialize_ms_per_mb: float = 60.0
    #: Per-chunk transfer retries before the migration is declared failed.
    max_transfer_retries: int = 3
    #: Base of the exponential retry backoff: retry ``n`` (0-based) waits
    #: ``min(cap, base * 2**n)`` plus deterministic jitter.
    retry_backoff_ms: float = 50.0
    retry_backoff_cap_ms: float = 2_000.0
    #: Jitter fraction added on top of the backoff (decorrelates retries).
    #: The jitter is *seeded*: the same (seed, key, attempt) always yields
    #: the same delay, keeping runs reproducible.
    retry_jitter_frac: float = 0.1
    backoff_seed: int = 0
    #: Overall wall-clock (simulated) budget for one migration, measured
    #: from ``move()``; retries never push past it.  0 disables.
    migration_deadline_ms: float = 0.0
    #: Split transfers into chunks of this size so a mid-transfer failure
    #: resumes from the last acknowledged chunk instead of resending
    #: everything.  0 (default) keeps the legacy single-message transfer,
    #: whose timing is byte-identical to pre-chunking behaviour.
    transfer_chunk_bytes: int = 0
    #: Sliding-window size for chunked transfers: up to this many chunks
    #: ride the wire concurrently, so per-hop latency is paid once per
    #: window instead of once per chunk.  1 (default) is stop-and-wait,
    #: byte-identical in timing and trace to the pre-window engine.
    transfer_window: int = 1

    def __post_init__(self) -> None:
        if self.transfer_chunk_bytes < 0:
            raise ValueError(
                f"transfer_chunk_bytes must be >= 0: {self.transfer_chunk_bytes}")
        if self.transfer_window < 1:
            raise ValueError(
                f"transfer_window must be >= 1: {self.transfer_window}")
        if self.transfer_window > 1 and self.transfer_chunk_bytes <= 0:
            raise ValueError(
                "transfer_window > 1 requires transfer_chunk_bytes > 0 "
                "(pipelining rides the chunked transfer path)")
        if self.max_transfer_retries < 0:
            raise ValueError(
                f"max_transfer_retries must be >= 0: {self.max_transfer_retries}")

    def checkout_ms(self, size_bytes: int, cpu_factor: float) -> float:
        mb = size_bytes / 1e6
        return (self.checkout_base_ms + self.serialize_ms_per_mb * mb) * cpu_factor

    def checkin_ms(self, size_bytes: int, cpu_factor: float) -> float:
        mb = size_bytes / 1e6
        return (self.checkin_base_ms + self.deserialize_ms_per_mb * mb) * cpu_factor

    def backoff_ms(self, attempt: int, key: str = "") -> float:
        """Delay before retry ``attempt`` (0-based): exponential, capped,
        with deterministic seeded jitter."""
        delay = min(self.retry_backoff_cap_ms,
                    self.retry_backoff_ms * (2 ** attempt))
        if self.retry_jitter_frac > 0:
            # random.Random seeds strings via SHA-512: stable across runs
            # and interpreter instances (unlike hash()).
            rng = random.Random(f"{self.backoff_seed}:{key}:{attempt}")
            delay += delay * self.retry_jitter_frac * rng.random()
        return delay

    def chunk_sizes(self, size_bytes: int) -> List[int]:
        """Wire chunks for a payload (a single chunk when chunking is off).

        A zero-byte payload yields an explicit empty plan: there is nothing
        to put on the wire, so no chunk machinery is scheduled (the control
        message still crosses the network at size 0).
        """
        if size_bytes <= 0:
            return []
        chunk = self.transfer_chunk_bytes
        if chunk <= 0 or size_bytes <= chunk:
            return [size_bytes]
        full, rest = divmod(size_bytes, chunk)
        return [chunk] * full + ([rest] if rest else [])


#: Public alias: the cost model is, above all, the transfer cost model.
TransferCostModel = CostModel


@dataclass
class MigrationResult:
    """Observable outcome of one move; completed asynchronously."""

    agent_name: str
    source: str
    destination: str
    size_bytes: int = 0
    started_at: float = 0.0
    checked_out_at: float = 0.0
    arrived_at: float = 0.0
    checked_in_at: float = 0.0
    completed: bool = False
    failed: bool = False
    failure_reason: str = ""
    #: Host-local clock stamps (Fig. 7): departure on the source clock,
    #: arrival on the destination clock.
    depart_local: float = 0.0
    arrive_local: float = 0.0
    agent: Optional[Agent] = None
    #: Reliability accounting (all zero on an undisturbed migration).
    transfer_retries: int = 0
    transfer_resumed: bool = False
    dedup_hits: int = 0
    chunks_total: int = 0
    chunks_acked: int = 0
    #: Sliding-window accounting (1/1/0 on unchunked or stop-and-wait runs).
    transfer_window: int = 1
    max_in_flight: int = 0
    #: Rough pipelining gain: (first-chunk RTT x chunks) - actual transfer
    #: time.  Only estimated when ``transfer_window > 1``.
    pipelined_saved_ms: float = 0.0
    recovery_log: List[str] = field(default_factory=list, repr=False)
    _callbacks: List[Callable[["MigrationResult"], None]] = field(
        default_factory=list, repr=False)
    _arrived: bool = field(default=False, repr=False)

    def on_complete(self, callback: Callable[["MigrationResult"], None]) -> None:
        if self.completed or self.failed:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _finish(self) -> None:
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()

    @property
    def total_ms(self) -> float:
        return self.checked_in_at - self.started_at

    @property
    def transfer_ms(self) -> float:
        return self.arrived_at - self.checked_out_at


@dataclass
class CloneResult(MigrationResult):
    """Outcome of a clone; ``agent`` is the new copy at the destination."""

    clone_name: str = ""


@dataclass
class _Transfer:
    """In-flight transfer state: the sliding window plus resume cursor.

    ``next_chunk`` is the lowest unacknowledged chunk -- the go-back-N
    base and the checkpoint a retry resumes from.  ``next_to_send`` runs
    ahead of it by at most ``transfer_window`` chunks.
    """

    container: "AgentContainer"
    snapshot: AgentSnapshot
    carried: List[ACLMessage]
    result: MigrationResult
    kind: str
    transfer_id: int
    chunk_sizes: List[int]
    next_chunk: int = 0
    #: Retries of the *current* base chunk (resets when the base advances).
    attempt: int = 0
    last_error: str = ""
    #: Next chunk to put on the wire (window head).
    next_to_send: int = 0
    #: Chunks currently riding the wire.
    in_flight: int = 0
    #: Chunks >= base delivered out of order while an earlier one is
    #: outstanding (drained as the base advances).
    delivered: set = field(default_factory=set)
    #: Bumped on every go-back-N rewind; callbacks from a superseded
    #: window round are ignored.
    epoch: int = 0
    #: True while a retry backoff is pending -- the pump stays quiet.
    recovering: bool = False
    #: End-to-end time of the first chunk (serial-estimate baseline).
    first_chunk_ms: float = 0.0
    #: True while the current window round was booked analytically (one
    #: kernel event for the whole round); per-ack refills are deferred to
    #: the end of the round so the next round can batch too.
    analytic: bool = False


class MobilityService:
    """Implements move/clone for every container on the platform."""

    def __init__(self, platform: "AgentPlatform",
                 cost_model: Optional[CostModel] = None):
        self.platform = platform
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.moves_started = 0
        self.moves_completed = 0
        self.clones_completed = 0
        self.transfers_dropped = 0
        self.transfer_retries = 0
        self.transfers_resumed = 0
        self.dedup_hits = 0
        self._transfer_seq = 0
        # (destination host, transfer_id) -> chunk seqs already accepted.
        # Entries are purged on completion AND on failure/dedup (a failed
        # migration must not leak receiver state), and the table is bounded
        # as a backstop against pathological churn.
        self._rx_chunks: dict = {}
        # Recently finished (completed or failed) transfer keys: stragglers
        # from a superseded window round dedup here instead of resurrecting
        # a fresh _rx_chunks entry.  Bounded FIFO.
        self._rx_done: dict = {}

    def attach(self, container: "AgentContainer") -> None:
        """Install the transfer protocol handler on a new container."""
        container.host.register_handler(TRANSFER_PROTOCOL,
                                        lambda m: self._on_transfer(container, m))

    # -- observability ----------------------------------------------------------

    def _begin_obs(self, result: MigrationResult, kind: str, host) -> None:
        """Open the agent-migration span pair (root + check-out phase).

        Spans ride on the result object, which travels the whole protocol
        in-process, so each step can close its phase and open the next with
        the arriving host's local clock stamp (the Fig. 7 raw readings).
        """
        obs = self.platform.loop.observability
        if obs is None:
            return
        root = obs.tracer.begin_span(
            f"agent.{kind}", category="agent", host=host,
            agent=result.agent_name, source=result.source,
            destination=result.destination, bytes=result.size_bytes)
        result._obs_root = root
        result._obs_phase = root.child("agent.checkout", host=host)

    @staticmethod
    def _obs_next_phase(result: MigrationResult, name: str, host,
                        **attributes) -> None:
        """Close the current phase span and open the next one."""
        root = getattr(result, "_obs_root", None)
        if root is None:
            return
        phase = result._obs_phase
        if not phase.finished:
            phase.end(host=host)
        result._obs_phase = root.child(name, host=host, **attributes)

    @staticmethod
    def _obs_finish(result: MigrationResult, host=None, **attributes) -> None:
        """Seal the phase and root spans (success or failure)."""
        root = getattr(result, "_obs_root", None)
        if root is None:
            return
        phase = result._obs_phase
        if not phase.finished:
            phase.end(host=host, **attributes)
        if not root.finished:
            root.end(host=host, **attributes)

    # -- move -------------------------------------------------------------------

    def move(self, agent: Agent, destination_host: str) -> MigrationResult:
        """Start a follow-me style migration; returns immediately."""
        container = agent.container
        if container is None:
            raise AgentError("agent is not in a container")
        if agent.state not in (AgentState.ACTIVE, AgentState.SUSPENDED):
            raise AgentError(f"cannot move agent in state {agent.state}")
        if destination_host == container.host_name:
            raise AgentError("destination equals current host")
        if not self.platform.has_container(destination_host):
            raise AgentError(f"no agent container on {destination_host!r}")
        loop = self.platform.loop
        snapshot = AgentSnapshot(type(agent).__name__, agent.local_name,
                                 agent.get_state())
        result = MigrationResult(
            agent_name=agent.local_name,
            source=container.host_name,
            destination=destination_host,
            size_bytes=snapshot.size_bytes,
            started_at=loop.now,
        )
        self.moves_started += 1
        self._begin_obs(result, "move", container.host)
        agent.state = AgentState.TRANSIT
        checkout = self.cost_model.checkout_ms(snapshot.size_bytes,
                                               container.host.cpu_factor)
        loop.call_later(checkout, self._check_out, agent, container,
                        snapshot, result, "move")
        return result

    def clone(self, agent: Agent, destination_host: str,
              new_name: str) -> CloneResult:
        """Start a clone-dispatch: copy the agent to the destination."""
        container = agent.container
        if container is None:
            raise AgentError("agent is not in a container")
        if agent.state is not AgentState.ACTIVE:
            raise AgentError(f"cannot clone agent in state {agent.state}")
        if not self.platform.has_container(destination_host):
            raise AgentError(f"no agent container on {destination_host!r}")
        if self.platform.where_is(new_name) is not None:
            raise AgentError(f"agent name {new_name!r} already in use")
        loop = self.platform.loop
        snapshot = AgentSnapshot(type(agent).__name__, new_name,
                                 agent.get_state())
        result = CloneResult(
            agent_name=agent.local_name,
            source=container.host_name,
            destination=destination_host,
            size_bytes=snapshot.size_bytes,
            started_at=loop.now,
            clone_name=new_name,
        )
        self._begin_obs(result, "clone", container.host)
        checkout = self.cost_model.checkout_ms(snapshot.size_bytes,
                                               container.host.cpu_factor)
        # The original keeps running; only the snapshot departs.
        loop.call_later(checkout, self._send_snapshot, container, snapshot,
                        [], result, "clone")
        return result

    # -- protocol steps -------------------------------------------------------------

    def _check_out(self, agent: Agent, container: "AgentContainer",
                   snapshot: AgentSnapshot, result: MigrationResult,
                   kind: str) -> None:
        # Capture the queue now so messages that arrived during the
        # serialization delay migrate with the agent.
        carried = list(agent._queue)
        agent._queue.clear()
        container.remove_agent(agent)
        self.platform.df.deregister_owner(
            f"{agent.local_name}@{container.host_name}")
        self._send_snapshot(container, snapshot, carried, result, kind)

    def _send_snapshot(self, container: "AgentContainer",
                       snapshot: AgentSnapshot, carried: List[ACLMessage],
                       result: MigrationResult, kind: str,
                       attempt: int = 0) -> None:
        result.checked_out_at = self.platform.loop.now
        result.depart_local = container.host.local_time()
        self._transfer_seq += 1
        sizes = self.cost_model.chunk_sizes(snapshot.size_bytes)
        result.chunks_total = len(sizes)
        if len(sizes) > 1:
            result.transfer_window = max(1, self.cost_model.transfer_window)
        self._transmit(_Transfer(
            container=container, snapshot=snapshot, carried=carried,
            result=result, kind=kind, transfer_id=self._transfer_seq,
            chunk_sizes=sizes, attempt=attempt))

    def _transmit(self, transfer: _Transfer) -> None:
        """Pump the transfer: fill the window (or, un-chunked, send all).

        Chunked transfers are pipelined go-back-N: up to ``transfer_window``
        chunks ride the wire at once, the simulator's delivery callback
        doubles as a zero-cost cumulative ack, and only the final chunk
        carries the actual payload.  A drop rewinds to the lowest unacked
        chunk after a seeded backoff, so bytes already acknowledged are
        never re-sent -- that is the checkpointed resume.  With
        ``transfer_window == 1`` this degenerates to the historical
        stop-and-wait engine, byte-identical in timing and trace.
        """
        transfer.recovering = False
        result = transfer.result
        sizes = transfer.chunk_sizes
        if len(sizes) <= 1:
            # Unchunked (or degenerate zero-byte) transfer: one message
            # carries everything.
            self._obs_next_phase(result, "agent.transfer",
                                 transfer.container.host,
                                 attempt=transfer.attempt)

            def on_dropped(receipt):
                self.transfers_dropped += 1
                self._retry(transfer, "lost in transit", lost_phase=True)

            try:
                self.platform.network.send(
                    transfer.container.host_name, result.destination,
                    TRANSFER_PROTOCOL,
                    (transfer.snapshot, transfer.carried, transfer.kind,
                     result),
                    sizes[0] if sizes else 0,
                    on_delivered=None, on_dropped=on_dropped)
            except RETRYABLE_SEND_ERRORS as exc:
                transfer.last_error = str(exc)
                self._retry(transfer, str(exc), lost_phase=False)
            except Exception as exc:
                self._fail(result, str(exc), transfer)
            return
        window = max(1, self.cost_model.transfer_window)
        if (window > 1 and transfer.in_flight == 0
                and len(sizes) - transfer.next_to_send >= 2
                and self._send_window(transfer, window)):
            return
        while (not transfer.recovering and not result.failed
               and transfer.in_flight < window
               and transfer.next_to_send < len(sizes)):
            if not self._send_chunk(transfer, window):
                break

    def _send_window(self, transfer: _Transfer, window: int) -> bool:
        """Try to book a whole window round in one kernel event.

        Delegates to :meth:`Network.send_window`, which only takes the
        analytic fast path on a direct, deterministic, uncontended link
        and declines (``None``) otherwise; on decline -- or on any send
        error -- this returns ``False`` and the caller falls back to the
        per-chunk pump, whose event pattern, error handling and semantics
        are unchanged.
        """
        result = transfer.result
        sizes = transfer.chunk_sizes
        base = transfer.next_to_send
        count = min(window - transfer.in_flight, len(sizes) - base)
        epoch = transfer.epoch
        chunks = []
        for seq in range(base, base + count):
            final = seq == len(sizes) - 1
            payload = ("chunk", transfer.transfer_id, seq, len(sizes),
                       (transfer.snapshot, transfer.carried, transfer.kind,
                        result) if final else None)

            def on_delivered(receipt, seq=seq, epoch=epoch):
                self._chunk_acked(transfer, seq, epoch, receipt)

            def on_dropped(receipt, epoch=epoch):
                self.transfers_dropped += 1
                if (epoch != transfer.epoch or result.failed
                        or result.completed):
                    return  # a newer window round already took over
                self._chunk_lost(transfer, "lost in transit",
                                 lost_phase=True)

            chunks.append((payload, sizes[seq], on_delivered, on_dropped))
        try:
            receipts = self.platform.network.send_window(
                transfer.container.host_name, result.destination,
                TRANSFER_PROTOCOL, chunks)
        except RETRYABLE_SEND_ERRORS:
            return False  # the pump will re-raise and handle it
        if receipts is None:
            return False
        self._obs_next_phase(result, "agent.transfer",
                             transfer.container.host,
                             attempt=transfer.attempt, chunk=base,
                             chunks=len(sizes), window=window,
                             in_flight=transfer.in_flight, batched=count)
        transfer.analytic = True
        transfer.in_flight += count
        transfer.next_to_send = base + count
        if transfer.in_flight > result.max_in_flight:
            result.max_in_flight = transfer.in_flight
        obs = self.platform.loop.observability
        if obs is not None:
            occupancy = obs.metrics.histogram("migration.window.occupancy")
            for depth in range(transfer.in_flight - count + 1,
                               transfer.in_flight + 1):
                occupancy.observe(depth)
        self._emit_window(transfer, window)
        return True

    def _emit_window(self, transfer: _Transfer, window: int) -> None:
        """Publish the window cursors to obs hooks (invariant checkers).

        Fired after every cursor mutation so a checker sees each
        intermediate state, not just the quiescent one.
        """
        obs = self.platform.loop.observability
        if obs is None or not obs.hooks:
            return
        obs.emit("migration.window",
                 agent=transfer.result.agent_name,
                 transfer_id=transfer.transfer_id,
                 base=transfer.next_chunk,
                 head=transfer.next_to_send,
                 in_flight=transfer.in_flight,
                 window=window,
                 total=len(transfer.chunk_sizes),
                 epoch=transfer.epoch)

    def _send_chunk(self, transfer: _Transfer, window: int) -> bool:
        """Put the window-head chunk on the wire; False stops the pump."""
        result = transfer.result
        sizes = transfer.chunk_sizes
        seq = transfer.next_to_send
        attrs = {"attempt": transfer.attempt, "chunk": seq,
                 "chunks": len(sizes)}
        if window > 1:
            attrs["window"] = window
            attrs["in_flight"] = transfer.in_flight
        self._obs_next_phase(result, "agent.transfer",
                             transfer.container.host, **attrs)
        final = seq == len(sizes) - 1
        payload = ("chunk", transfer.transfer_id, seq, len(sizes),
                   (transfer.snapshot, transfer.carried, transfer.kind,
                    result) if final else None)
        epoch = transfer.epoch

        def on_delivered(receipt, seq=seq, epoch=epoch):
            self._chunk_acked(transfer, seq, epoch, receipt)

        def on_dropped(receipt, epoch=epoch):
            self.transfers_dropped += 1
            if (epoch != transfer.epoch or result.failed
                    or result.completed):
                return  # a newer window round already took over
            self._chunk_lost(transfer, "lost in transit", lost_phase=True)

        try:
            self.platform.network.send(
                transfer.container.host_name, result.destination,
                TRANSFER_PROTOCOL, payload, sizes[seq],
                on_delivered=on_delivered, on_dropped=on_dropped)
        except RETRYABLE_SEND_ERRORS as exc:
            transfer.last_error = str(exc)
            self._chunk_lost(transfer, str(exc), lost_phase=False)
            return False
        except Exception as exc:
            self._fail(result, str(exc), transfer)
            return False
        if transfer.epoch != epoch or result.failed or result.completed:
            # A lossy link drops synchronously inside send(): on_dropped
            # already ran, _chunk_lost rewound the window and scheduled
            # the retransmit round -- do not advance the cursors it reset.
            return False
        transfer.in_flight += 1
        transfer.next_to_send = seq + 1
        if transfer.in_flight > result.max_in_flight:
            result.max_in_flight = transfer.in_flight
        if window > 1:
            obs = self.platform.loop.observability
            if obs is not None:
                obs.metrics.histogram("migration.window.occupancy").observe(
                    transfer.in_flight)
        self._emit_window(transfer, window)
        return True

    def _chunk_acked(self, transfer: _Transfer, seq: int, epoch: int,
                     receipt) -> None:
        """Delivery callback: slide the window past every contiguous ack."""
        result = transfer.result
        if epoch != transfer.epoch or result.failed:
            return  # superseded by a go-back-N retransmit round
        transfer.in_flight = max(0, transfer.in_flight - 1)
        transfer.delivered.add(seq)
        if seq == 0 and transfer.first_chunk_ms == 0.0:
            transfer.first_chunk_ms = receipt.transfer_ms
        advanced = False
        while transfer.next_chunk in transfer.delivered:
            transfer.delivered.discard(transfer.next_chunk)
            transfer.next_chunk += 1
            advanced = True
        if advanced:
            transfer.attempt = 0
            result.chunks_acked = max(result.chunks_acked,
                                      transfer.next_chunk)
        self._emit_window(transfer, max(1, self.cost_model.transfer_window))
        total = len(transfer.chunk_sizes)
        if transfer.next_chunk >= total:
            self._window_drained(transfer)
            return
        if transfer.analytic:
            if transfer.in_flight > 0:
                return  # round still replaying; refill when it drains
            transfer.analytic = False
        if not transfer.recovering:
            self._transmit(transfer)

    def _window_drained(self, transfer: _Transfer) -> None:
        """Every chunk acked: record the pipelined-vs-serial estimate."""
        result = transfer.result
        window = result.transfer_window
        if window <= 1:
            return
        actual = self.platform.loop.now - result.checked_out_at
        serial_estimate = transfer.first_chunk_ms * len(transfer.chunk_sizes)
        result.pipelined_saved_ms = max(0.0, serial_estimate - actual)
        obs = self.platform.loop.observability
        if obs is not None:
            obs.metrics.histogram("migration.window.saved_ms").observe(
                result.pipelined_saved_ms)

    def _chunk_lost(self, transfer: _Transfer, reason: str,
                    lost_phase: bool) -> None:
        """Go-back-N: rewind the window to the lowest unacked chunk."""
        transfer.epoch += 1
        transfer.recovering = True
        transfer.analytic = False
        transfer.in_flight = 0
        transfer.delivered.clear()
        transfer.next_to_send = transfer.next_chunk
        self._emit_window(transfer, max(1, self.cost_model.transfer_window))
        self._retry(transfer, reason, lost_phase=lost_phase)

    def _retry(self, transfer: _Transfer, reason: str,
               lost_phase: bool) -> None:
        """Schedule a retransmit of the current chunk, or give up."""
        result = transfer.result
        cost_model = self.cost_model
        loop = self.platform.loop
        if transfer.attempt >= cost_model.max_transfer_retries:
            message = (f"transfer to {result.destination!r} lost after "
                       f"{transfer.attempt + 1} attempts")
            if transfer.last_error:
                message += f" (last error: {transfer.last_error})"
            self._fail(result, message, transfer)
            return
        delay = cost_model.backoff_ms(
            transfer.attempt,
            key=f"{result.agent_name}:{transfer.transfer_id}:"
                f"{transfer.next_chunk}")
        deadline = cost_model.migration_deadline_ms
        if deadline > 0 and loop.now + delay - result.started_at > deadline:
            self._fail(result,
                       f"migration deadline ({deadline:g} ms) exceeded "
                       f"after {transfer.attempt + 1} attempts", transfer)
            return
        if lost_phase:
            phase = getattr(result, "_obs_phase", None)
            if phase is not None and not phase.finished:
                phase.end(lost=True)
        transfer.attempt += 1
        result.transfer_retries += 1
        self.transfer_retries += 1
        result.recovery_log.append(
            f"[{loop.now:.1f} ms] retry {transfer.attempt} of chunk "
            f"{transfer.next_chunk}: {reason}; backoff {delay:.1f} ms")
        resumed = transfer.next_chunk > 0
        if resumed and not result.transfer_resumed:
            result.transfer_resumed = True
            self.transfers_resumed += 1
        obs = loop.observability
        if obs is not None:
            obs.metrics.counter("migration.retries").inc()
            if resumed:
                obs.metrics.counter("migration.transfer_resumed").inc()
        loop.call_later(delay, self._transmit, transfer)

    def _fail(self, result: MigrationResult, reason: str,
              transfer: Optional[_Transfer] = None) -> None:
        result.failed = True
        result.failure_reason = reason
        if transfer is not None:
            # A failed/abandoned migration must not leak receiver-side
            # dedup state; remember the key so stragglers dedup cleanly.
            key = (result.destination, transfer.transfer_id)
            self._rx_chunks.pop(key, None)
            self._mark_rx_done(key)
        self._obs_finish(result, failed=True, reason=reason)
        result._finish()

    #: Bounds for receiver-side bookkeeping: backstops against pathological
    #: churn, far above anything a sane deployment accumulates now that
    #: entries are purged on completion, failure and dedup.
    _RX_CHUNKS_MAX = 1024
    _RX_DONE_MAX = 256

    def _mark_rx_done(self, key) -> None:
        self._rx_done[key] = True
        while len(self._rx_done) > self._RX_DONE_MAX:
            self._rx_done.pop(next(iter(self._rx_done)))

    def _on_transfer(self, container: "AgentContainer", net_message) -> None:
        payload = net_message.payload
        if (isinstance(payload, tuple) and len(payload) == 5
                and payload[0] == "chunk"):
            _tag, transfer_id, seq, total, inner = payload
            key = (container.host_name, transfer_id)
            if key in self._rx_done:  # straggler of a finished transfer
                self._dedup(container, inner[3] if inner else None)
                return
            seen = self._rx_chunks.get(key)
            if seen is None:
                seen = self._rx_chunks[key] = set()
                while len(self._rx_chunks) > self._RX_CHUNKS_MAX:
                    oldest = next(iter(self._rx_chunks))
                    if oldest == key:
                        break  # never evict the transfer being served
                    self._rx_chunks.pop(oldest)
            duplicate = seq in seen
            seen.add(seq)
            if inner is None:  # intermediate chunk: ack only
                if duplicate:  # re-delivery of an already-accepted chunk
                    self._dedup(container, None)
                return
            if len(seen) < total:
                # The payload-bearing final chunk outran a lost earlier
                # chunk (pipelined window + loss); hold the check-in until
                # the go-back-N retransmit fills the hole.
                return
            self._rx_chunks.pop(key, None)
            self._mark_rx_done(key)
            # A duplicate final chunk falls through: either the transfer
            # already checked in (the _arrived guard below dedups it) or a
            # retransmitted final just completed a recovered window.
            snapshot, carried, kind, result = inner
        else:
            snapshot, carried, kind, result = payload
        if result._arrived:  # duplicate delivery of the whole transfer
            self._dedup(container, result)
            return
        result._arrived = True
        loop = self.platform.loop
        result.arrived_at = loop.now
        result.arrive_local = container.host.local_time()
        obs = loop.observability
        if obs is not None:
            obs.metrics.histogram("agent.transfer_ms").observe(
                result.arrived_at - result.checked_out_at)
        self._obs_next_phase(result, "agent.checkin", container.host)
        checkin = self.cost_model.checkin_ms(snapshot.size_bytes,
                                             container.host.cpu_factor)
        loop.call_later(checkin, self._check_in, container, snapshot,
                        carried, kind, result)

    def _dedup(self, container: "AgentContainer",
               result: Optional[MigrationResult]) -> None:
        """Idempotent check-in: swallow a duplicate delivery and count it."""
        self.dedup_hits += 1
        if result is not None:
            result.dedup_hits += 1
        obs = self.platform.loop.observability
        if obs is not None:
            obs.metrics.counter("migration.dedup_hits").inc()
            obs.tracer.event("migration.dedup", category="agent",
                             host=container.host)

    def _check_in(self, container: "AgentContainer", snapshot: AgentSnapshot,
                  carried: List[ACLMessage], kind: str,
                  result: MigrationResult) -> None:
        try:
            agent = snapshot.instantiate()
        except Exception as exc:  # registration/restore failures surface here
            result.failed = True
            result.failure_reason = str(exc)
            self._obs_finish(result, host=container.host, failed=True,
                             reason=str(exc))
            result._finish()
            return
        agent.state = AgentState.TRANSIT
        container.add_agent(agent)
        agent.do_activate()
        for message in carried:
            agent.post(message)
        if kind == "move":
            agent.after_move()
            self.moves_completed += 1
        else:
            agent.after_clone()
            self.clones_completed += 1
        result.agent = agent
        result.checked_in_at = self.platform.loop.now
        result.completed = True
        obs = self.platform.loop.observability
        if obs is not None:
            obs.metrics.counter("agent.completed", kind=kind).inc()
        self._obs_finish(result, host=container.host)
        result._finish()
