"""Mobile-agent migration: check-out, transfer, check-in, clone.

"Mobile agent will wrap the corresponding components, check out from the
current site, check in at the destination, inform the coordinator ... and
resume the execution." (paper §4.3.)

The protocol (weak mobility, as in JADE):

1. **check-out** -- the agent enters TRANSIT, its plain-data state is
   serialized into an :class:`~repro.agents.serialization.AgentSnapshot`
   (CPU cost proportional to size, scaled by the host's ``cpu_factor``),
   and it is deregistered from the source container.
2. **transfer** -- the snapshot (plus any queued messages) rides the
   simulated network, paying latency + size/bandwidth per hop.
3. **check-in** -- the destination container deserializes (CPU cost again),
   registers a fresh instance, re-activates it and calls ``after_move``.

``clone`` is identical except the original stays active and the copy gets a
new name and ``after_clone`` -- the primitive under clone-dispatch mobility.

Host-local clock stamps (``t1``..``t4`` style) are recorded on the results
so experiments can apply the paper's Fig. 7 round-trip correction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.agents.acl import ACLMessage
from repro.agents.agent import Agent, AgentError, AgentState
from repro.agents.serialization import AgentSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.platform import AgentContainer, AgentPlatform

TRANSFER_PROTOCOL = "agents.transfer"


@dataclass
class CostModel:
    """CPU cost of (de)serialization, scaled by each host's cpu_factor.

    Defaults are calibrated so the two-PC / 10 Mbps testbed of the paper
    lands in the right regime: tens of ms of fixed agent overhead plus a
    size-proportional term.
    """

    checkout_base_ms: float = 60.0
    serialize_ms_per_mb: float = 40.0
    checkin_base_ms: float = 100.0
    deserialize_ms_per_mb: float = 60.0
    #: Transfer retries on loss before the migration is declared failed.
    max_transfer_retries: int = 3
    retry_backoff_ms: float = 50.0

    def checkout_ms(self, size_bytes: int, cpu_factor: float) -> float:
        mb = size_bytes / 1e6
        return (self.checkout_base_ms + self.serialize_ms_per_mb * mb) * cpu_factor

    def checkin_ms(self, size_bytes: int, cpu_factor: float) -> float:
        mb = size_bytes / 1e6
        return (self.checkin_base_ms + self.deserialize_ms_per_mb * mb) * cpu_factor


@dataclass
class MigrationResult:
    """Observable outcome of one move; completed asynchronously."""

    agent_name: str
    source: str
    destination: str
    size_bytes: int = 0
    started_at: float = 0.0
    checked_out_at: float = 0.0
    arrived_at: float = 0.0
    checked_in_at: float = 0.0
    completed: bool = False
    failed: bool = False
    failure_reason: str = ""
    #: Host-local clock stamps (Fig. 7): departure on the source clock,
    #: arrival on the destination clock.
    depart_local: float = 0.0
    arrive_local: float = 0.0
    agent: Optional[Agent] = None
    _callbacks: List[Callable[["MigrationResult"], None]] = field(
        default_factory=list, repr=False)

    def on_complete(self, callback: Callable[["MigrationResult"], None]) -> None:
        if self.completed or self.failed:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _finish(self) -> None:
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()

    @property
    def total_ms(self) -> float:
        return self.checked_in_at - self.started_at

    @property
    def transfer_ms(self) -> float:
        return self.arrived_at - self.checked_out_at


@dataclass
class CloneResult(MigrationResult):
    """Outcome of a clone; ``agent`` is the new copy at the destination."""

    clone_name: str = ""


class MobilityService:
    """Implements move/clone for every container on the platform."""

    def __init__(self, platform: "AgentPlatform",
                 cost_model: Optional[CostModel] = None):
        self.platform = platform
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.moves_started = 0
        self.moves_completed = 0
        self.clones_completed = 0
        self.transfers_dropped = 0

    def attach(self, container: "AgentContainer") -> None:
        """Install the transfer protocol handler on a new container."""
        container.host.register_handler(TRANSFER_PROTOCOL,
                                        lambda m: self._on_transfer(container, m))

    # -- observability ----------------------------------------------------------

    def _begin_obs(self, result: MigrationResult, kind: str, host) -> None:
        """Open the agent-migration span pair (root + check-out phase).

        Spans ride on the result object, which travels the whole protocol
        in-process, so each step can close its phase and open the next with
        the arriving host's local clock stamp (the Fig. 7 raw readings).
        """
        obs = self.platform.loop.observability
        if obs is None:
            return
        root = obs.tracer.begin_span(
            f"agent.{kind}", category="agent", host=host,
            agent=result.agent_name, source=result.source,
            destination=result.destination, bytes=result.size_bytes)
        result._obs_root = root
        result._obs_phase = root.child("agent.checkout", host=host)

    @staticmethod
    def _obs_next_phase(result: MigrationResult, name: str, host,
                        **attributes) -> None:
        """Close the current phase span and open the next one."""
        root = getattr(result, "_obs_root", None)
        if root is None:
            return
        phase = result._obs_phase
        if not phase.finished:
            phase.end(host=host)
        result._obs_phase = root.child(name, host=host, **attributes)

    @staticmethod
    def _obs_finish(result: MigrationResult, host=None, **attributes) -> None:
        """Seal the phase and root spans (success or failure)."""
        root = getattr(result, "_obs_root", None)
        if root is None:
            return
        phase = result._obs_phase
        if not phase.finished:
            phase.end(host=host, **attributes)
        if not root.finished:
            root.end(host=host, **attributes)

    # -- move -------------------------------------------------------------------

    def move(self, agent: Agent, destination_host: str) -> MigrationResult:
        """Start a follow-me style migration; returns immediately."""
        container = agent.container
        if container is None:
            raise AgentError("agent is not in a container")
        if agent.state not in (AgentState.ACTIVE, AgentState.SUSPENDED):
            raise AgentError(f"cannot move agent in state {agent.state}")
        if destination_host == container.host_name:
            raise AgentError("destination equals current host")
        if not self.platform.has_container(destination_host):
            raise AgentError(f"no agent container on {destination_host!r}")
        loop = self.platform.loop
        snapshot = AgentSnapshot(type(agent).__name__, agent.local_name,
                                 agent.get_state())
        result = MigrationResult(
            agent_name=agent.local_name,
            source=container.host_name,
            destination=destination_host,
            size_bytes=snapshot.size_bytes,
            started_at=loop.now,
        )
        self.moves_started += 1
        self._begin_obs(result, "move", container.host)
        agent.state = AgentState.TRANSIT
        checkout = self.cost_model.checkout_ms(snapshot.size_bytes,
                                               container.host.cpu_factor)
        loop.call_later(checkout, self._check_out, agent, container,
                        snapshot, result, "move")
        return result

    def clone(self, agent: Agent, destination_host: str,
              new_name: str) -> CloneResult:
        """Start a clone-dispatch: copy the agent to the destination."""
        container = agent.container
        if container is None:
            raise AgentError("agent is not in a container")
        if agent.state is not AgentState.ACTIVE:
            raise AgentError(f"cannot clone agent in state {agent.state}")
        if not self.platform.has_container(destination_host):
            raise AgentError(f"no agent container on {destination_host!r}")
        if self.platform.where_is(new_name) is not None:
            raise AgentError(f"agent name {new_name!r} already in use")
        loop = self.platform.loop
        snapshot = AgentSnapshot(type(agent).__name__, new_name,
                                 agent.get_state())
        result = CloneResult(
            agent_name=agent.local_name,
            source=container.host_name,
            destination=destination_host,
            size_bytes=snapshot.size_bytes,
            started_at=loop.now,
            clone_name=new_name,
        )
        self._begin_obs(result, "clone", container.host)
        checkout = self.cost_model.checkout_ms(snapshot.size_bytes,
                                               container.host.cpu_factor)
        # The original keeps running; only the snapshot departs.
        loop.call_later(checkout, self._send_snapshot, container, snapshot,
                        [], result, "clone")
        return result

    # -- protocol steps -------------------------------------------------------------

    def _check_out(self, agent: Agent, container: "AgentContainer",
                   snapshot: AgentSnapshot, result: MigrationResult,
                   kind: str) -> None:
        # Capture the queue now so messages that arrived during the
        # serialization delay migrate with the agent.
        carried = list(agent._queue)
        agent._queue.clear()
        container.remove_agent(agent)
        self.platform.df.deregister_owner(
            f"{agent.local_name}@{container.host_name}")
        self._send_snapshot(container, snapshot, carried, result, kind)

    def _send_snapshot(self, container: "AgentContainer",
                       snapshot: AgentSnapshot, carried: List[ACLMessage],
                       result: MigrationResult, kind: str,
                       attempt: int = 0) -> None:
        if attempt == 0:
            result.checked_out_at = self.platform.loop.now
            result.depart_local = container.host.local_time()
        self._obs_next_phase(result, "agent.transfer", container.host,
                             attempt=attempt)
        payload = (snapshot, carried, kind, result)

        def on_dropped(receipt):
            self.transfers_dropped += 1
            if attempt < self.cost_model.max_transfer_retries:
                phase = getattr(result, "_obs_phase", None)
                if phase is not None:
                    phase.end(lost=True)
                delay = self.cost_model.retry_backoff_ms * (attempt + 1)
                self.platform.loop.call_later(
                    delay, self._send_snapshot, container, snapshot,
                    carried, result, kind, attempt + 1)
            else:
                result.failed = True
                result.failure_reason = (
                    f"transfer to {result.destination!r} lost after "
                    f"{attempt + 1} attempts")
                self._obs_finish(result, failed=True,
                                 reason=result.failure_reason)
                result._finish()

        try:
            self.platform.network.send(
                container.host_name, result.destination, TRANSFER_PROTOCOL,
                payload, snapshot.size_bytes, on_dropped=on_dropped)
        except Exception as exc:
            result.failed = True
            result.failure_reason = str(exc)
            self._obs_finish(result, failed=True, reason=str(exc))
            result._finish()

    def _on_transfer(self, container: "AgentContainer", net_message) -> None:
        snapshot, carried, kind, result = net_message.payload
        loop = self.platform.loop
        result.arrived_at = loop.now
        result.arrive_local = container.host.local_time()
        obs = loop.observability
        if obs is not None:
            obs.metrics.histogram("agent.transfer_ms").observe(
                result.arrived_at - result.checked_out_at)
        self._obs_next_phase(result, "agent.checkin", container.host)
        checkin = self.cost_model.checkin_ms(snapshot.size_bytes,
                                             container.host.cpu_factor)
        loop.call_later(checkin, self._check_in, container, snapshot,
                        carried, kind, result)

    def _check_in(self, container: "AgentContainer", snapshot: AgentSnapshot,
                  carried: List[ACLMessage], kind: str,
                  result: MigrationResult) -> None:
        try:
            agent = snapshot.instantiate()
        except Exception as exc:  # registration/restore failures surface here
            result.failed = True
            result.failure_reason = str(exc)
            self._obs_finish(result, host=container.host, failed=True,
                             reason=str(exc))
            result._finish()
            return
        agent.state = AgentState.TRANSIT
        container.add_agent(agent)
        agent.do_activate()
        for message in carried:
            agent.post(message)
        if kind == "move":
            agent.after_move()
            self.moves_completed += 1
        else:
            agent.after_clone()
            self.clones_completed += 1
        result.agent = agent
        result.checked_in_at = self.platform.loop.now
        result.completed = True
        obs = self.platform.loop.observability
        if obs is not None:
            obs.metrics.counter("agent.completed", kind=kind).inc()
        self._obs_finish(result, host=container.host)
        result._finish()
