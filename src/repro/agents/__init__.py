"""Agent platform substrate: a JADE-style runtime in pure Python.

The paper's prototype runs on JADE 3.4; "both autonomous agents and mobile
agents are implemented as specific agents inheriting JADE's Agent class".
This package provides the slice of JADE the middleware depends on:

- :mod:`repro.agents.acl` -- FIPA-ACL messages and performatives.
- :mod:`repro.agents.agent` -- the Agent base class with the JADE lifecycle
  (initiated / active / suspended / transit) and a message queue.
- :mod:`repro.agents.behaviours` -- one-shot / cyclic / ticker / waker / FSM
  behaviours scheduled cooperatively.
- :mod:`repro.agents.platform` -- per-host containers, the platform AMS and
  the message transport over :mod:`repro.net`.
- :mod:`repro.agents.directory` -- a DF-style yellow-pages service.
- :mod:`repro.agents.serialization` -- size-accounted state serialization.
- :mod:`repro.agents.mobility` -- the check-out / transfer / check-in mobile
  agent migration protocol, plus cloning for clone-dispatch mobility.
"""

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent, AgentError, AgentState
from repro.agents.behaviours import (
    Behaviour,
    CyclicBehaviour,
    FSMBehaviour,
    OneShotBehaviour,
    SequentialBehaviour,
    TickerBehaviour,
    WakerBehaviour,
)
from repro.agents.directory import DirectoryFacilitator, ServiceDescription
from repro.agents.mobility import CloneResult, MigrationResult, MobilityService
from repro.agents.protocols import (
    RequestInitiator,
    RequestResponder,
    ResponderDecision,
)
from repro.agents.platform import AgentContainer, AgentPlatform, PlatformError
from repro.agents.serialization import (
    AgentSnapshot,
    SerializationError,
    deep_size_bytes,
    register_agent_type,
    registered_agent_type,
)

__all__ = [
    "ACLMessage",
    "Agent",
    "AgentContainer",
    "AgentError",
    "AgentPlatform",
    "AgentSnapshot",
    "AgentState",
    "Behaviour",
    "CloneResult",
    "CyclicBehaviour",
    "DirectoryFacilitator",
    "FSMBehaviour",
    "MigrationResult",
    "MobilityService",
    "OneShotBehaviour",
    "Performative",
    "PlatformError",
    "RequestInitiator",
    "RequestResponder",
    "ResponderDecision",
    "SequentialBehaviour",
    "SerializationError",
    "ServiceDescription",
    "TickerBehaviour",
    "WakerBehaviour",
    "deep_size_bytes",
    "register_agent_type",
    "registered_agent_type",
]
