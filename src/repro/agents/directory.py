"""Directory Facilitator: JADE-style yellow pages.

Agents advertise :class:`ServiceDescription`s (a name, a service type and
free-form properties); other agents search by type/name/property subset.
The MDAgent middleware registers application and resource services here so
autonomous agents can discover counterparts on candidate destination hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ServiceDescription:
    """One advertised service."""

    name: str
    service_type: str
    owner: str  # agent aid
    properties: Dict[str, Any] = field(default_factory=dict)

    def matches(self, service_type: Optional[str] = None,
                name: Optional[str] = None,
                properties: Optional[Dict[str, Any]] = None) -> bool:
        if service_type is not None and self.service_type != service_type:
            return False
        if name is not None and self.name != name:
            return False
        for key, value in (properties or {}).items():
            if self.properties.get(key) != value:
                return False
        return True


class DirectoryFacilitator:
    """Register / deregister / search services."""

    def __init__(self) -> None:
        self._services: List[ServiceDescription] = []
        self.registrations = 0
        self.searches = 0

    def register(self, description: ServiceDescription) -> ServiceDescription:
        if self.find(description.name, description.owner) is not None:
            raise ValueError(
                f"service {description.name!r} already registered by "
                f"{description.owner!r}")
        self._services.append(description)
        self.registrations += 1
        return description

    def deregister(self, name: str, owner: str) -> bool:
        """Remove one service; returns False when absent."""
        service = self.find(name, owner)
        if service is None:
            return False
        self._services.remove(service)
        return True

    def deregister_owner(self, owner: str) -> int:
        """Remove everything an agent advertised (on deletion/migration)."""
        before = len(self._services)
        self._services = [s for s in self._services if s.owner != owner]
        return before - len(self._services)

    def find(self, name: str, owner: str) -> Optional[ServiceDescription]:
        for service in self._services:
            if service.name == name and service.owner == owner:
                return service
        return None

    def search(self, service_type: Optional[str] = None,
               name: Optional[str] = None,
               properties: Optional[Dict[str, Any]] = None
               ) -> List[ServiceDescription]:
        self.searches += 1
        return [s for s in self._services
                if s.matches(service_type, name, properties)]

    def __len__(self) -> int:
        return len(self._services)
