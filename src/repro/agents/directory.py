"""Directory Facilitator: JADE-style yellow pages.

Agents advertise :class:`ServiceDescription`s (a name, a service type and
free-form properties); other agents search by type/name/property subset.
The MDAgent middleware registers application and resource services here so
autonomous agents can discover counterparts on candidate destination hosts.

Registrations are eternal by default.  When the facilitator is given a
``clock`` and a positive lease (``default_lease_ms`` or per-registration
``lease_ms``), each entry expires unless renewed -- so a crashed host's
agents silently drop out of the yellow pages instead of being advertised
forever (see :meth:`~repro.agents.platform.AgentPlatform.enable_df_leases`).

Expiry is *active* when a ``schedule`` callable is installed: the
facilitator keeps one timer armed at the earliest lease deadline and
sweeps when it fires, so stale entries disappear at their expiry
sim-time even if nobody ever searches again -- and ``on_expired`` fires
per dropped entry (the platform turns that into a ``fault.lease_expired``
hook event).  Without a scheduler the legacy passive behaviour remains:
expired entries are filtered at read time and swept on ``search``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class ServiceDescription:
    """One advertised service."""

    name: str
    service_type: str
    owner: str  # agent aid
    properties: Dict[str, Any] = field(default_factory=dict)
    #: Absolute expiry instant on the facilitator's clock (None = eternal).
    expires_at: Optional[float] = None

    def matches(self, service_type: Optional[str] = None,
                name: Optional[str] = None,
                properties: Optional[Dict[str, Any]] = None) -> bool:
        if service_type is not None and self.service_type != service_type:
            return False
        if name is not None and self.name != name:
            return False
        for key, value in (properties or {}).items():
            if self.properties.get(key) != value:
                return False
        return True


class DirectoryFacilitator:
    """Register / deregister / search services (optionally lease-based)."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 default_lease_ms: float = 0.0) -> None:
        self._services: List[ServiceDescription] = []
        self.registrations = 0
        self.searches = 0
        self.leases_expired = 0
        #: Time source for lease accounting (None disables expiry entirely).
        self.clock = clock
        #: Lease applied by :meth:`register` when no explicit one is given
        #: (0 keeps the legacy eternal registrations).
        self.default_lease_ms = default_lease_ms
        #: ``schedule(delay_ms, fn) -> timer`` enabling active expiry.
        self.schedule: Optional[Callable[[float, Callable[[], None]], Any]] = None
        #: Called once per entry dropped by a sweep.
        self.on_expired: Optional[Callable[[ServiceDescription], None]] = None
        self._timer: Any = None
        self._timer_at: Optional[float] = None

    # -- leases ---------------------------------------------------------------

    def _expiry(self, lease_ms: Optional[float]) -> Optional[float]:
        lease = self.default_lease_ms if lease_ms is None else lease_ms
        if lease <= 0 or self.clock is None:
            return None
        return self.clock() + lease

    def _expired(self, service: ServiceDescription) -> bool:
        return (self.clock is not None and service.expires_at is not None
                and service.expires_at <= self.clock())

    def sweep_expired(self) -> int:
        """Drop expired registrations; returns how many were removed."""
        if self.clock is None:
            return 0
        live = [s for s in self._services if not self._expired(s)]
        dropped = [s for s in self._services if self._expired(s)]
        self._services = live
        self.leases_expired += len(dropped)
        if self.on_expired is not None:
            for service in dropped:
                self.on_expired(service)
        self._arm()
        return len(dropped)

    def _arm(self) -> None:
        """Keep one timer armed at the earliest lease deadline."""
        if self.schedule is None or self.clock is None:
            return
        deadlines = [s.expires_at for s in self._services
                     if s.expires_at is not None]
        if not deadlines:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
                self._timer_at = None
            return
        due = min(deadlines)
        if (self._timer is not None and self._timer_at is not None
                and self._timer_at <= due + 1e-9):
            return  # the armed timer already fires at or before ``due``
        if self._timer is not None:
            self._timer.cancel()
        self._timer_at = due
        self._timer = self.schedule(max(0.0, due - self.clock()),
                                    self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self._timer_at = None
        self.sweep_expired()  # re-arms for the next deadline

    def disarm(self) -> None:
        """Stop active expiry (when renewals end, state freezes)."""
        self.schedule = None
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
            self._timer_at = None

    def renew(self, name: str, owner: str,
              lease_ms: Optional[float] = None) -> bool:
        """Extend one service's lease; returns False when absent/expired."""
        service = self.find(name, owner)
        if service is None:
            return False
        service.expires_at = self._expiry(lease_ms)
        self._arm()
        return True

    def renew_owner(self, owner: str, lease_ms: Optional[float] = None) -> int:
        """Extend every lease an agent holds; returns how many."""
        self.sweep_expired()
        renewed = 0
        for service in self._services:
            if service.owner == owner:
                service.expires_at = self._expiry(lease_ms)
                renewed += 1
        self._arm()
        return renewed

    def release_all(self, lease_ms: Optional[float] = None) -> None:
        """(Re)stamp every live registration -- used when leases turn on."""
        for service in self._services:
            service.expires_at = self._expiry(lease_ms)
        self._arm()

    # -- registry -------------------------------------------------------------

    def register(self, description: ServiceDescription,
                 lease_ms: Optional[float] = None) -> ServiceDescription:
        if self.find(description.name, description.owner) is not None:
            raise ValueError(
                f"service {description.name!r} already registered by "
                f"{description.owner!r}")
        if description.expires_at is None:
            description.expires_at = self._expiry(lease_ms)
        self._services.append(description)
        self.registrations += 1
        self._arm()
        return description

    def deregister(self, name: str, owner: str) -> bool:
        """Remove one service; returns False when absent."""
        service = self.find(name, owner)
        if service is None:
            return False
        self._services.remove(service)
        return True

    def deregister_owner(self, owner: str) -> int:
        """Remove everything an agent advertised (on deletion/migration)."""
        before = len(self._services)
        self._services = [s for s in self._services if s.owner != owner]
        return before - len(self._services)

    def find(self, name: str, owner: str) -> Optional[ServiceDescription]:
        for service in self._services:
            if (service.name == name and service.owner == owner
                    and not self._expired(service)):
                return service
        return None

    def search(self, service_type: Optional[str] = None,
               name: Optional[str] = None,
               properties: Optional[Dict[str, Any]] = None
               ) -> List[ServiceDescription]:
        self.searches += 1
        self.sweep_expired()
        return [s for s in self._services
                if s.matches(service_type, name, properties)]

    def __len__(self) -> int:
        return len([s for s in self._services if not self._expired(s)])
