"""FIPA interaction-protocol helpers.

JADE ships AchieveRE initiator/responder behaviours implementing the FIPA
Request protocol (REQUEST -> AGREE/REFUSE -> INFORM/FAILURE).  The MDAgent
middleware's Fig. 4 interactions follow this shape (the AA REQUESTs the MA
manager, which AGREEs and later reports), so the platform provides the same
conveniences:

- :class:`RequestInitiator` -- send a REQUEST, collect the responses, get
  callbacks per outcome.
- :class:`RequestResponder` -- serve REQUESTs matching a protocol with a
  handler that returns (agree, result) and optionally completes later.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.agents.acl import ACLMessage, Performative
from repro.agents.behaviours import Behaviour

#: Handler signature for responders: (request) -> (agree: bool, payload).
RequestHandler = Callable[[ACLMessage], "ResponderDecision"]


class ResponderDecision:
    """What a responder decided about one request.

    ``agree`` drives the AGREE/REFUSE response; for agreed requests the
    result payload is sent as the closing INFORM (or FAILURE when
    ``failed``).  ``defer()`` lets the handler complete the request later
    (e.g. after an asynchronous migration finishes).
    """

    def __init__(self, agree: bool, payload: Any = None,
                 failed: bool = False):
        self.agree = agree
        self.payload = payload
        self.failed = failed
        self.deferred = False
        self._complete_callback: Optional[Callable[["ResponderDecision"], None]] = None

    @classmethod
    def refuse(cls, reason: Any = None) -> "ResponderDecision":
        return cls(False, reason)

    @classmethod
    def agree_with(cls, payload: Any = None) -> "ResponderDecision":
        return cls(True, payload)

    def defer(self) -> "ResponderDecision":
        """Mark the final INFORM as pending; call complete()/fail() later."""
        self.deferred = True
        return self

    def complete(self, payload: Any = None) -> None:
        self.payload = payload
        self.failed = False
        if self._complete_callback is not None:
            self._complete_callback(self)

    def fail(self, reason: Any = None) -> None:
        self.payload = reason
        self.failed = True
        if self._complete_callback is not None:
            self._complete_callback(self)


class RequestInitiator(Behaviour):
    """One FIPA-request conversation from the initiator side.

    Callbacks: ``on_agree``, ``on_refuse``, ``on_inform``, ``on_failure``
    (each optional, receiving the ACL message).  The behaviour finishes
    after the closing INFORM/FAILURE, after a REFUSE, or on timeout.
    """

    _conversation_ids = itertools.count(1)

    def __init__(self, receiver: str, content: Any, protocol: str,
                 on_agree: Optional[Callable[[ACLMessage], None]] = None,
                 on_refuse: Optional[Callable[[ACLMessage], None]] = None,
                 on_inform: Optional[Callable[[ACLMessage], None]] = None,
                 on_failure: Optional[Callable[[ACLMessage], None]] = None,
                 timeout_ms: Optional[float] = None, name: str = ""):
        super().__init__(name or f"request-to-{receiver}")
        self.receiver = receiver
        self.content = content
        self.protocol = protocol
        self.on_agree = on_agree
        self.on_refuse = on_refuse
        self.on_inform = on_inform
        self.on_failure = on_failure
        self.timeout_ms = timeout_ms
        self.conversation_id = f"req-{next(self._conversation_ids)}"
        self.state = "start"
        self.timed_out = False
        self._deadline_timer = None

    def on_start(self) -> None:
        request = ACLMessage(
            Performative.REQUEST,
            receivers=[self.receiver],
            content=self.content,
            conversation_id=self.conversation_id,
            protocol=self.protocol,
        ).with_reply_id()
        self.agent.send(request)
        self.state = "waiting"
        if self.timeout_ms is not None:
            self._deadline_timer = self.agent.loop.call_later(
                self.timeout_ms, self._timeout)

    def _timeout(self) -> None:
        if self.state not in ("done",):
            self.timed_out = True
            self.state = "done"
            self.restart()
            self.agent.schedule_step()

    def action(self) -> None:
        if self.state == "done":
            return
        message = self.agent.receive(conversation_id=self.conversation_id)
        if message is None:
            self.block()
            return
        if message.performative is Performative.AGREE:
            if self.on_agree is not None:
                self.on_agree(message)
        elif message.performative is Performative.REFUSE:
            if self.on_refuse is not None:
                self.on_refuse(message)
            self._finish()
        elif message.performative is Performative.INFORM:
            if self.on_inform is not None:
                self.on_inform(message)
            self._finish()
        elif message.performative is Performative.FAILURE:
            if self.on_failure is not None:
                self.on_failure(message)
            self._finish()

    def _finish(self) -> None:
        self.state = "done"
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()

    def done(self) -> bool:
        return self.state == "done"


class SubscriptionInitiator(Behaviour):
    """FIPA-subscribe initiator: SUBSCRIBE once, receive INFORMs forever.

    ``on_notification`` fires for every INFORM in the conversation; call
    :meth:`cancel` to send CANCEL and end the behaviour.
    """

    _conversation_ids = itertools.count(1)

    def __init__(self, receiver: str, content: Any, protocol: str,
                 on_notification: Callable[[ACLMessage], None],
                 name: str = ""):
        super().__init__(name or f"subscribe-to-{receiver}")
        self.receiver = receiver
        self.content = content
        self.protocol = protocol
        self.on_notification = on_notification
        self.conversation_id = f"sub-{next(self._conversation_ids)}"
        self.cancelled = False
        self.notifications = 0

    def on_start(self) -> None:
        self.agent.send(ACLMessage(
            Performative.SUBSCRIBE,
            receivers=[self.receiver],
            content=self.content,
            conversation_id=self.conversation_id,
            protocol=self.protocol,
        ))

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self.agent.send(ACLMessage(
                Performative.CANCEL,
                receivers=[self.receiver],
                conversation_id=self.conversation_id,
                protocol=self.protocol,
            ))

    def action(self) -> None:
        message = self.agent.receive(conversation_id=self.conversation_id,
                                     performative=Performative.INFORM)
        if message is None:
            self.block()
            return
        self.notifications += 1
        self.on_notification(message)

    def done(self) -> bool:
        return self.cancelled


class SubscriptionResponder(Behaviour):
    """FIPA-subscribe responder: tracks subscribers, pushes notifications.

    Call :meth:`notify` to INFORM every live subscriber.  CANCEL removes a
    subscriber.  An optional ``on_subscribe`` filter may reject
    subscriptions (REFUSE).
    """

    def __init__(self, protocol: str,
                 on_subscribe: Optional[Callable[[ACLMessage], bool]] = None,
                 name: str = ""):
        super().__init__(name or f"subscriptions-{protocol}")
        self.protocol = protocol
        self.on_subscribe = on_subscribe
        #: conversation_id -> subscriber aid
        self.subscribers: dict = {}

    def action(self) -> None:
        message = self.agent.receive(protocol=self.protocol,
                                     performative=Performative.SUBSCRIBE)
        if message is None:
            message = self.agent.receive(protocol=self.protocol,
                                         performative=Performative.CANCEL)
            if message is None:
                self.block()
                return
            self.subscribers.pop(message.conversation_id, None)
            return
        if self.on_subscribe is not None and not self.on_subscribe(message):
            self.agent.send(message.create_reply(Performative.REFUSE))
            return
        self.subscribers[message.conversation_id] = message.sender
        self.agent.send(message.create_reply(Performative.AGREE))

    def notify(self, content: Any) -> int:
        """Push one notification to every subscriber; returns the count."""
        for conversation_id, subscriber in list(self.subscribers.items()):
            self.agent.send(ACLMessage(
                Performative.INFORM,
                receivers=[subscriber],
                content=content,
                conversation_id=conversation_id,
                protocol=self.protocol,
            ))
        return len(self.subscribers)

    def done(self) -> bool:
        return False


class ContractNetInitiator(Behaviour):
    """FIPA Contract Net: CFP to several contractors, award the best bid.

    Sends PROPOSE-soliciting CFPs (modelled as REQUESTs with ``cfp`` dicts),
    collects PROPOSE/REFUSE replies until all contractors answered or the
    deadline passes, then calls ``select`` with the proposals and INFORMs
    the winner (award) -- the rest receive nothing (implicit rejection,
    keeping the message count low for the middleware's hot path).

    ``on_award(winner_aid, proposal)`` fires after awarding; with no valid
    proposals it fires with ``(None, None)``.
    """

    _conversation_ids = itertools.count(1)

    def __init__(self, contractors, task: Any, protocol: str,
                 select: Callable[[dict], Optional[str]],
                 on_award: Callable[[Optional[str], Any], None],
                 deadline_ms: float = 1_000.0, name: str = ""):
        super().__init__(name or "contract-net")
        self.contractors = list(contractors)
        self.task = task
        self.protocol = protocol
        self.select = select
        self.on_award = on_award
        self.deadline_ms = deadline_ms
        self.conversation_id = f"cnp-{next(self._conversation_ids)}"
        #: contractor aid -> proposal content
        self.proposals: dict = {}
        self.refusals: list = []
        self._awarded = False
        self._deadline_timer = None

    def on_start(self) -> None:
        if not self.contractors:
            self._award()
            return
        for contractor in self.contractors:
            self.agent.send(ACLMessage(
                Performative.REQUEST,
                receivers=[contractor],
                content={"cfp": self.task},
                conversation_id=self.conversation_id,
                protocol=self.protocol,
            ))
        self._deadline_timer = self.agent.loop.call_later(
            self.deadline_ms, self._deadline)

    def _deadline(self) -> None:
        self._deadline_timer = None
        if not self._awarded:
            self._award()
            self.restart()
            self.agent.schedule_step()

    def action(self) -> None:
        if self._awarded:
            return
        message = self.agent.receive(conversation_id=self.conversation_id)
        if message is None:
            self.block()
            return
        if message.performative is Performative.PROPOSE:
            self.proposals[message.sender] = message.content
        elif message.performative is Performative.REFUSE:
            self.refusals.append(message.sender)
        if len(self.proposals) + len(self.refusals) >= len(self.contractors):
            self._award()

    def _award(self) -> None:
        self._awarded = True
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()
        winner = self.select(self.proposals) if self.proposals else None
        if winner is not None:
            self.agent.send(ACLMessage(
                Performative.INFORM,
                receivers=[winner],
                content={"award": self.task},
                conversation_id=self.conversation_id,
                protocol=self.protocol,
            ))
            self.on_award(winner, self.proposals.get(winner))
        else:
            self.on_award(None, None)

    def done(self) -> bool:
        return self._awarded


class ContractNetResponder(Behaviour):
    """Contract Net contractor: answers CFPs with bids.

    ``bid(cfp_content) -> proposal | None``; None means REFUSE.
    ``on_award(award_content)`` fires when this contractor wins.
    """

    def __init__(self, protocol: str,
                 bid: Callable[[Any], Optional[Any]],
                 on_award: Optional[Callable[[Any], None]] = None,
                 name: str = ""):
        super().__init__(name or f"contractor-{protocol}")
        self.protocol = protocol
        self.bid = bid
        self.on_award = on_award
        self.bids_made = 0
        self.awards_won = 0

    def action(self) -> None:
        message = self.agent.receive(protocol=self.protocol,
                                     performative=Performative.REQUEST)
        if message is not None and isinstance(message.content, dict) \
                and "cfp" in message.content:
            proposal = self.bid(message.content["cfp"])
            if proposal is None:
                self.agent.send(message.create_reply(Performative.REFUSE))
            else:
                self.bids_made += 1
                self.agent.send(message.create_reply(Performative.PROPOSE,
                                                     proposal))
            return
        message = self.agent.receive(protocol=self.protocol,
                                     performative=Performative.INFORM)
        if message is not None and isinstance(message.content, dict) \
                and "award" in message.content:
            self.awards_won += 1
            if self.on_award is not None:
                self.on_award(message.content["award"])
            return
        self.block()

    def done(self) -> bool:
        return False


class ProposeInitiator(Behaviour):
    """One FIPA-propose conversation from the initiator side.

    Sends a PROPOSE and waits for ACCEPT-PROPOSAL / REJECT-PROPOSAL (the
    FIPA interoperable-mobility shape: capabilities are negotiated before
    any state moves).  Callbacks: ``on_accept``, ``on_reject`` (each
    optional, receiving the ACL message) and ``on_timeout``.
    """

    _conversation_ids = itertools.count(1)

    def __init__(self, receiver: str, content: Any, protocol: str,
                 on_accept: Optional[Callable[[ACLMessage], None]] = None,
                 on_reject: Optional[Callable[[ACLMessage], None]] = None,
                 on_timeout: Optional[Callable[[], None]] = None,
                 timeout_ms: Optional[float] = None, name: str = ""):
        super().__init__(name or f"propose-to-{receiver}")
        self.receiver = receiver
        self.content = content
        self.protocol = protocol
        self.on_accept = on_accept
        self.on_reject = on_reject
        self.on_timeout = on_timeout
        self.timeout_ms = timeout_ms
        self.conversation_id = f"prop-{next(self._conversation_ids)}"
        self.state = "start"
        self.timed_out = False
        self._deadline_timer = None

    def on_start(self) -> None:
        proposal = ACLMessage(
            Performative.PROPOSE,
            receivers=[self.receiver],
            content=self.content,
            conversation_id=self.conversation_id,
            protocol=self.protocol,
        ).with_reply_id()
        self.agent.send(proposal)
        self.state = "waiting"
        if self.timeout_ms is not None:
            self._deadline_timer = self.agent.loop.call_later(
                self.timeout_ms, self._timeout)

    def _timeout(self) -> None:
        if self.state != "done":
            self.timed_out = True
            self.state = "done"
            if self.on_timeout is not None:
                self.on_timeout()
            self.restart()
            self.agent.schedule_step()

    def action(self) -> None:
        if self.state == "done":
            return
        message = self.agent.receive(conversation_id=self.conversation_id)
        if message is None:
            self.block()
            return
        if message.performative is Performative.ACCEPT_PROPOSAL:
            self._finish()
            if self.on_accept is not None:
                self.on_accept(message)
        elif message.performative is Performative.REJECT_PROPOSAL:
            self._finish()
            if self.on_reject is not None:
                self.on_reject(message)

    def _finish(self) -> None:
        self.state = "done"
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()

    def done(self) -> bool:
        return self.state == "done"


class ProposeResponder(Behaviour):
    """Serves FIPA proposals for one protocol, forever.

    ``handler(message) -> (accept: bool, payload)``; the payload rides in
    the ACCEPT-PROPOSAL (a capability grant) or the REJECT-PROPOSAL (the
    rejection reason).
    """

    def __init__(self, protocol: str,
                 handler: Callable[[ACLMessage], "tuple"],
                 name: str = ""):
        super().__init__(name or f"proposals-{protocol}")
        self.protocol = protocol
        self.handler = handler
        self.served = 0
        self.accepted = 0
        self.rejected = 0

    def action(self) -> None:
        message = self.agent.receive(performative=Performative.PROPOSE,
                                     protocol=self.protocol)
        if message is None:
            self.block()
            return
        self.served += 1
        accept, payload = self.handler(message)
        if accept:
            self.accepted += 1
            self.agent.send(message.create_reply(
                Performative.ACCEPT_PROPOSAL, payload))
        else:
            self.rejected += 1
            self.agent.send(message.create_reply(
                Performative.REJECT_PROPOSAL, payload))

    def done(self) -> bool:
        return False


class RequestResponder(Behaviour):
    """Serves FIPA requests for one protocol, forever.

    The handler returns a :class:`ResponderDecision`; AGREE/REFUSE is sent
    immediately, and the closing INFORM/FAILURE either right away or when a
    deferred decision completes.
    """

    def __init__(self, protocol: str, handler: RequestHandler,
                 name: str = ""):
        super().__init__(name or f"responder-{protocol}")
        self.protocol = protocol
        self.handler = handler
        self.served = 0

    def action(self) -> None:
        message = self.agent.receive(performative=Performative.REQUEST,
                                     protocol=self.protocol)
        if message is None:
            self.block()
            return
        self.served += 1
        decision = self.handler(message)
        if not decision.agree:
            self.agent.send(message.create_reply(Performative.REFUSE,
                                                 decision.payload))
            return
        self.agent.send(message.create_reply(Performative.AGREE))
        if decision.deferred:
            agent = self.agent

            def finish(d: ResponderDecision) -> None:
                performative = (Performative.FAILURE if d.failed
                                else Performative.INFORM)
                agent.send(message.create_reply(performative, d.payload))

            decision._complete_callback = finish
        else:
            performative = (Performative.FAILURE if decision.failed
                            else Performative.INFORM)
            self.agent.send(message.create_reply(performative,
                                                 decision.payload))

    def done(self) -> bool:
        return False
