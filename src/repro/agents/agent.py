"""The Agent base class with the JADE lifecycle.

Agents live in a container on a host; their activity is a set of
:mod:`behaviours <repro.agents.behaviours>` stepped by the container, and
they exchange :mod:`ACL messages <repro.agents.acl>` through the platform.

Lifecycle (JADE's agent FSM): INITIATED -> ACTIVE <-> SUSPENDED, ACTIVE ->
TRANSIT (migration in flight) -> ACTIVE at the destination, any -> DELETED.
Suspended/in-transit agents keep receiving messages into their queue but do
not run until resumed -- which is exactly what application components rely
on across a migration.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from repro.agents.acl import ACLMessage
from repro.agents.behaviours import Behaviour

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.platform import AgentContainer
    from repro.net.kernel import EventLoop


class AgentError(RuntimeError):
    """Invalid agent operation (bad lifecycle transition, no container...)."""


class AgentState(enum.Enum):
    INITIATED = "initiated"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    TRANSIT = "transit"
    DELETED = "deleted"


class Agent:
    """Base agent.  Subclass and override :meth:`setup`.

    For migratable agents also override :meth:`get_state` /
    :meth:`restore_state` (plain-data only) and decorate the class with
    :func:`~repro.agents.serialization.register_agent_type`.
    """

    def __init__(self, local_name: str):
        if not local_name or "@" in local_name:
            raise AgentError(f"invalid agent local name {local_name!r}")
        self.local_name = local_name
        self.state = AgentState.INITIATED
        self.container: Optional["AgentContainer"] = None
        self.behaviours: List[Behaviour] = []
        self._queue: Deque[ACLMessage] = deque()
        self._step_scheduled = False
        self.messages_handled = 0

    # -- identity ----------------------------------------------------------

    @property
    def aid(self) -> str:
        """Full agent id ``name@host`` (requires a container)."""
        if self.container is None:
            raise AgentError(f"agent {self.local_name!r} is not in a container")
        return f"{self.local_name}@{self.container.host_name}"

    @property
    def here(self) -> str:
        """The host this agent currently runs on."""
        if self.container is None:
            raise AgentError(f"agent {self.local_name!r} is not in a container")
        return self.container.host_name

    @property
    def loop(self) -> "EventLoop":
        if self.container is None:
            raise AgentError(f"agent {self.local_name!r} is not in a container")
        return self.container.loop

    @property
    def now(self) -> float:
        """Host-local clock reading (skewed!); use for paper-style timing."""
        if self.container is None:
            raise AgentError(f"agent {self.local_name!r} is not in a container")
        return self.container.host.local_time()

    # -- lifecycle hooks ------------------------------------------------------

    def setup(self) -> None:
        """Called once when the agent starts; add initial behaviours here."""

    def take_down(self) -> None:
        """Called when the agent is deleted."""

    def after_move(self) -> None:
        """Called at the destination after a successful migration."""

    def after_clone(self) -> None:
        """Called on the *clone* at the destination after cloning."""

    # -- migration state (weak mobility) -----------------------------------------

    def get_state(self) -> Dict[str, Any]:
        """Plain-data state to carry across a migration.  Override."""
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`get_state`.  Override."""

    # -- behaviours -------------------------------------------------------------

    def add_behaviour(self, behaviour: Behaviour) -> Behaviour:
        behaviour.agent = self
        self.behaviours.append(behaviour)
        if self.state is AgentState.ACTIVE:
            behaviour.on_start()
            self.schedule_step()
        else:
            behaviour._needs_start = True  # started when the agent activates
        return behaviour

    def remove_behaviour(self, behaviour: Behaviour) -> None:
        if behaviour in self.behaviours:
            self.behaviours.remove(behaviour)

    # -- messaging ----------------------------------------------------------------

    def send(self, message: ACLMessage) -> None:
        """Send through the platform; sender is stamped automatically."""
        if self.container is None:
            raise AgentError(f"agent {self.local_name!r} cannot send: "
                             f"not in a container")
        message.sender = self.aid
        self.container.platform.send_message(message)

    def post(self, message: ACLMessage) -> None:
        """Deliver a message into this agent's queue (transport side)."""
        self._queue.append(message)
        if self.state is AgentState.ACTIVE:
            for behaviour in self.behaviours:
                behaviour.restart()
            self.schedule_step()

    def receive(self, **template: Any) -> Optional[ACLMessage]:
        """Pop the first queued message matching the template, else None.

        Template keys are those of :meth:`ACLMessage.matches`
        (performative, sender, conversation_id, in_reply_to, protocol).
        """
        for i, message in enumerate(self._queue):
            if message.matches(**template):
                del self._queue[i]
                self.messages_handled += 1
                return message
        return None

    @property
    def queue_size(self) -> int:
        return len(self._queue)

    # -- scheduling (driven by the container) ---------------------------------------

    def schedule_step(self) -> None:
        if self.container is not None and not self._step_scheduled \
                and self.state is AgentState.ACTIVE:
            self._step_scheduled = True
            self.loop.call_soon(self._step)

    def _step(self) -> None:
        self._step_scheduled = False
        if self.state is not AgentState.ACTIVE:
            return
        progressed = False
        for behaviour in list(self.behaviours):
            if behaviour.blocked or behaviour not in self.behaviours:
                continue
            if getattr(behaviour, "_needs_start", False):
                behaviour._needs_start = False
                behaviour.on_start()
                if behaviour.blocked:
                    continue
            behaviour.runs += 1
            behaviour.action()
            progressed = True
            if behaviour.done():
                behaviour.on_end()
                self.remove_behaviour(behaviour)
        runnable = any(not b.blocked for b in self.behaviours)
        if runnable and progressed:
            # Yield through the loop so same-time events interleave fairly.
            self._step_scheduled = True
            self.loop.call_later(self.step_quantum_ms, self._step)

    #: Delay between consecutive steps of never-blocking behaviours; nonzero
    #: so a spinning behaviour advances simulated time instead of livelocking.
    step_quantum_ms: float = 0.1

    # -- lifecycle transitions -----------------------------------------------------

    def do_activate(self) -> None:
        """INITIATED/SUSPENDED -> ACTIVE."""
        if self.state not in (AgentState.INITIATED, AgentState.SUSPENDED,
                              AgentState.TRANSIT):
            raise AgentError(f"cannot activate from {self.state}")
        first_start = self.state is AgentState.INITIATED
        self.state = AgentState.ACTIVE
        if first_start:
            self.setup()
        for behaviour in self.behaviours:
            if getattr(behaviour, "_needs_start", False):
                behaviour._needs_start = False
                behaviour.on_start()
        self.schedule_step()

    def do_suspend(self) -> None:
        if self.state is not AgentState.ACTIVE:
            raise AgentError(f"cannot suspend from {self.state}")
        self.state = AgentState.SUSPENDED

    def do_delete(self) -> None:
        if self.state is AgentState.DELETED:
            return
        self.state = AgentState.DELETED
        self.take_down()
        if self.container is not None:
            self.container.remove_agent(self)

    def do_move(self, destination_host: str):
        """Migrate to another host; returns the in-flight MigrationResult.

        Delegates to the container's mobility service (check-out, transfer,
        check-in).  The agent object at the source becomes TRANSIT and is
        discarded; a fresh instance resumes at the destination.
        """
        if self.container is None:
            raise AgentError("cannot move: agent not in a container")
        return self.container.mobility.move(self, destination_host)

    def do_clone(self, destination_host: str, new_name: str):
        """Clone this agent onto another host (clone-dispatch mobility)."""
        if self.container is None:
            raise AgentError("cannot clone: agent not in a container")
        return self.container.mobility.clone(self, destination_host, new_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = self.container.host_name if self.container else "nowhere"
        return f"<Agent {self.local_name}@{where} {self.state.value}>"
