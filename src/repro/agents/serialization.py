"""Size-accounted agent/component serialization.

Migration cost in the paper is driven by how many bytes the mobile agent
wraps ("It will decrease the performance when the applications' size grows
up").  We never need real wire bytes inside one Python process, but we do
need *honest sizes*: :func:`deep_size_bytes` walks plain-data state and
charges realistic per-value costs, and :class:`AgentSnapshot` carries a
class reference plus state dict -- the weak-mobility model JADE uses (code
is assumed present or shipped alongside; execution restarts from a method
boundary rather than an instruction pointer).

Agent classes that migrate must be registered with
:func:`register_agent_type` so the destination container can re-instantiate
them from the snapshot (the moral equivalent of having the class on the
destination's classpath).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Type

#: Byte-size model for primitive values (roughly Java serialization scale).
_OVERHEAD_PER_OBJECT = 16
_SIZE_BOOL = 1
_SIZE_NUMBER = 8


class SerializationError(RuntimeError):
    """Raised when state cannot be serialized or a type is unregistered."""


def deep_size_bytes(value: Any) -> int:
    """Estimate the serialized size of a plain-data value.

    Accepts None, bool, int, float, str, bytes and (nested) list / tuple /
    set / dict.  Anything else is rejected -- agent state must be plain data
    to migrate, exactly like Java's ``Serializable`` contract.

    The walk is iterative (an explicit stack), so deeply nested state is
    sized without recursion limits, and a container that reaches itself --
    directly or through any number of levels -- raises
    :class:`SerializationError` the way a real serializer would reject a
    cyclic object graph.
    """
    # Scalar fast path: no stack, no ancestor set.
    if value is None:
        return 1
    if isinstance(value, bool):
        return _SIZE_BOOL
    if isinstance(value, (int, float)):
        return _SIZE_NUMBER
    if isinstance(value, str):
        return _OVERHEAD_PER_OBJECT + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _OVERHEAD_PER_OBJECT + len(value)
    total = 0
    stack = [value]
    # Identity set of *container* ancestors on the current DFS path: a
    # container re-encountered while still open is a cycle.  Sentinel
    # frames pop ids when a container's children are exhausted, so shared
    # (diamond) references are still legal and charged once per occurrence.
    open_ids: set = set()
    while stack:
        node = stack.pop()
        if type(node) is _CloseFrame:
            open_ids.discard(node.ident)
            continue
        if node is None:
            total += 1
            continue
        if isinstance(node, bool):
            total += _SIZE_BOOL
            continue
        if isinstance(node, (int, float)):
            total += _SIZE_NUMBER
            continue
        if isinstance(node, str):
            total += _OVERHEAD_PER_OBJECT + len(node.encode("utf-8"))
            continue
        if isinstance(node, (bytes, bytearray)):
            total += _OVERHEAD_PER_OBJECT + len(node)
            continue
        if isinstance(node, (list, tuple, set, frozenset)):
            ident = id(node)
            if ident in open_ids:
                raise SerializationError(
                    "cannot size cyclic agent state: a "
                    f"{type(node).__name__} contains itself")
            open_ids.add(ident)
            total += _OVERHEAD_PER_OBJECT
            stack.append(_CloseFrame(ident))
            stack.extend(node)
            continue
        if isinstance(node, dict):
            ident = id(node)
            if ident in open_ids:
                raise SerializationError(
                    "cannot size cyclic agent state: a dict contains "
                    "itself")
            open_ids.add(ident)
            total += _OVERHEAD_PER_OBJECT
            # Virtual payloads: domain objects (media files, code bundles)
            # are not materialized in memory, but their wire size must be
            # honest.
            virtual = node.get("__virtual_bytes__")
            if type(virtual) is int and virtual > 0:
                total += virtual
            stack.append(_CloseFrame(ident))
            for k, v in node.items():
                stack.append(k)
                stack.append(v)
            continue
        declared = getattr(node, "size_bytes", None)
        if type(declared) is int:
            # Domain objects (e.g. data components) may declare their own
            # size.  ``type`` (not ``isinstance``) on purpose: ``bool`` is
            # an ``int`` subclass, and ``size_bytes=True`` is a bug to
            # reject, not a 1-byte payload.
            total += _OVERHEAD_PER_OBJECT + declared
            continue
        raise SerializationError(
            f"cannot size value of type {type(node).__name__}; agent state "
            f"must be plain data")
    return total


class _CloseFrame:
    """Stack sentinel: pops a container off the open-ancestor set."""

    __slots__ = ("ident",)

    def __init__(self, ident: int):
        self.ident = ident


#: Registry of migratable agent classes by symbolic name.
_AGENT_TYPES: Dict[str, Type] = {}


def register_agent_type(cls: Type) -> Type:
    """Class decorator: make an Agent subclass re-instantiable after
    migration.  The symbolic name is the class's qualified name."""
    _AGENT_TYPES[cls.__name__] = cls
    return cls


def registered_agent_type(name: str) -> Type:
    try:
        return _AGENT_TYPES[name]
    except KeyError:
        raise SerializationError(
            f"agent type {name!r} is not registered for migration; "
            f"decorate it with @register_agent_type") from None


@dataclass
class AgentSnapshot:
    """The wire form of a migrating agent: class reference + state."""

    agent_type: str
    local_name: str
    state: Dict[str, Any]
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = (_OVERHEAD_PER_OBJECT
                               + deep_size_bytes(self.agent_type)
                               + deep_size_bytes(self.local_name)
                               + deep_size_bytes(self.state))

    def instantiate(self) -> Any:
        """Build a fresh agent object from the snapshot (not yet started)."""
        cls = registered_agent_type(self.agent_type)
        agent = cls(self.local_name)
        agent.restore_state(dict(self.state))
        return agent
