"""Size-accounted agent/component serialization.

Migration cost in the paper is driven by how many bytes the mobile agent
wraps ("It will decrease the performance when the applications' size grows
up").  We never need real wire bytes inside one Python process, but we do
need *honest sizes*: :func:`deep_size_bytes` walks plain-data state and
charges realistic per-value costs, and :class:`AgentSnapshot` carries a
class reference plus state dict -- the weak-mobility model JADE uses (code
is assumed present or shipped alongside; execution restarts from a method
boundary rather than an instruction pointer).

Agent classes that migrate must be registered with
:func:`register_agent_type` so the destination container can re-instantiate
them from the snapshot (the moral equivalent of having the class on the
destination's classpath).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Type

#: Byte-size model for primitive values (roughly Java serialization scale).
_OVERHEAD_PER_OBJECT = 16
_SIZE_BOOL = 1
_SIZE_NUMBER = 8


class SerializationError(RuntimeError):
    """Raised when state cannot be serialized or a type is unregistered."""


def deep_size_bytes(value: Any) -> int:
    """Estimate the serialized size of a plain-data value.

    Accepts None, bool, int, float, str, bytes and (nested) list / tuple /
    set / dict.  Anything else is rejected -- agent state must be plain data
    to migrate, exactly like Java's ``Serializable`` contract.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return _SIZE_BOOL
    if isinstance(value, (int, float)):
        return _SIZE_NUMBER
    if isinstance(value, str):
        return _OVERHEAD_PER_OBJECT + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _OVERHEAD_PER_OBJECT + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _OVERHEAD_PER_OBJECT + sum(deep_size_bytes(v) for v in value)
    if isinstance(value, dict):
        total = _OVERHEAD_PER_OBJECT + sum(
            deep_size_bytes(k) + deep_size_bytes(v) for k, v in value.items())
        # Virtual payloads: domain objects (media files, code bundles) are
        # not materialized in memory, but their wire size must be honest.
        virtual = value.get("__virtual_bytes__")
        if isinstance(virtual, int) and virtual > 0:
            total += virtual
        return total
    if hasattr(value, "size_bytes") and isinstance(
            getattr(value, "size_bytes"), int):
        # Domain objects (e.g. data components) may declare their own size.
        return _OVERHEAD_PER_OBJECT + value.size_bytes
    raise SerializationError(
        f"cannot size value of type {type(value).__name__}; agent state "
        f"must be plain data")


#: Registry of migratable agent classes by symbolic name.
_AGENT_TYPES: Dict[str, Type] = {}


def register_agent_type(cls: Type) -> Type:
    """Class decorator: make an Agent subclass re-instantiable after
    migration.  The symbolic name is the class's qualified name."""
    _AGENT_TYPES[cls.__name__] = cls
    return cls


def registered_agent_type(name: str) -> Type:
    try:
        return _AGENT_TYPES[name]
    except KeyError:
        raise SerializationError(
            f"agent type {name!r} is not registered for migration; "
            f"decorate it with @register_agent_type") from None


@dataclass
class AgentSnapshot:
    """The wire form of a migrating agent: class reference + state."""

    agent_type: str
    local_name: str
    state: Dict[str, Any]
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = (_OVERHEAD_PER_OBJECT
                               + deep_size_bytes(self.agent_type)
                               + deep_size_bytes(self.local_name)
                               + deep_size_bytes(self.state))

    def instantiate(self) -> Any:
        """Build a fresh agent object from the snapshot (not yet started)."""
        cls = registered_agent_type(self.agent_type)
        agent = cls(self.local_name)
        agent.restore_state(dict(self.state))
        return agent
