"""Discrete-event simulation kernel.

The kernel keeps a priority queue of timestamped callbacks and advances a
global *simulated* clock to each event's due time.  Nothing here sleeps or
reads the wall clock, so experiments are fast and fully deterministic.

Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), which keeps causally
ordered callbacks causally ordered.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on invalid kernel operations (e.g. scheduling in the past)."""


class Timer:
    """Handle for a scheduled event; supports cancellation.

    Returned by :meth:`EventLoop.call_at` / :meth:`EventLoop.call_later`.
    Cancelling an already fired or already cancelled timer is a no-op.
    """

    __slots__ = ("due", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, due: float, seq: int, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.due = due
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired and not cancelled)."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Timer due={self.due:.3f} {state}>"


class EventLoop:
    """Deterministic discrete-event loop over simulated milliseconds.

    Typical use::

        loop = EventLoop()
        loop.call_later(10.0, hello)
        loop.run()            # drains every event
        loop.now              # -> 10.0
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        #: Optional :class:`repro.obs.Observability` hub.  ``None`` (the
        #: default) keeps the dispatch loop entirely uninstrumented -- one
        #: attribute read and an ``is None`` check per event, nothing else.
        self.observability = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for _, _, t in self._queue if t.active)

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when:.3f} < now {self._now:.3f}"
            )
        timer = Timer(float(when), next(self._seq), callback, args)
        heapq.heappush(self._queue, (timer.due, timer.seq, timer))
        return timer

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently running event and anything already queued for *now*)."""
        return self.call_at(self._now, callback, *args)

    def reschedule(self, timer: Timer, when: float) -> Timer:
        """Move a pending timer to a new due time.

        Cancels ``timer`` (a no-op if it already fired or was cancelled)
        and schedules the same callback/args at ``when``, returning the new
        handle.  Used by the fair-share link engine, which must shift its
        predicted completion event whenever a flow joins or leaves a link.
        The old heap entry stays behind as a cancelled tombstone -- cheap,
        and it never dispatches.
        """
        timer.cancel()
        return self.call_at(when, timer.callback, *timer.args)

    def _pop_due(self) -> Optional[Timer]:
        while self._queue:
            _, _, timer = heapq.heappop(self._queue)
            if not timer.cancelled:
                return timer
        return None

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns False when the queue is empty (time does not advance).
        """
        timer = self._pop_due()
        if timer is None:
            return False
        self._now = timer.due
        timer.fired = True
        self._processed += 1
        obs = self.observability
        if obs is None:
            timer.callback(*timer.args)
        else:
            self._dispatch_traced(obs, timer)
        return True

    def _dispatch_traced(self, obs, timer: Timer) -> None:
        """Run one event under a kernel dispatch span.

        The span is synchronous, so instrumentation fired inside the
        callback (network transfers, ACL events) nests under it.  The
        queue-depth gauge samples ``len(_queue)`` rather than
        :attr:`pending` to stay O(1) per event.
        """
        callback = timer.callback
        name = getattr(callback, "__qualname__", "") or type(callback).__name__
        metrics = obs.metrics
        metrics.counter("kernel.events").inc()
        metrics.gauge("kernel.queue_depth").set(len(self._queue))
        with obs.tracer.span(name, category="kernel"):
            callback(*timer.args)
        if obs.hooks:
            # Post-dispatch checkpoint for runtime invariant checkers
            # (repro.simcheck) and the wall-clock profiler
            # (repro.obs.perf): state has settled for this instant.
            # ``depth`` counts raw heap entries (cancelled tombstones
            # included) so the read stays O(1).
            obs.emit("kernel.event", now=self._now, callback=name,
                     processed=self._processed, depth=len(self._queue))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events run.

        ``until`` is inclusive: events due exactly at ``until`` run, and on
        exit the clock is advanced to ``until`` even if the queue drained
        earlier (so idle time is observable).
        """
        if self._running:
            raise SimulationError("event loop is re-entrant: run() called from a callback")
        self._running = True
        ran = 0
        try:
            while True:
                if max_events is not None and ran >= max_events:
                    break
                timer = self._peek_due()
                if timer is None:
                    break
                if until is not None and timer.due > until:
                    break
                self.step()
                ran += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return ran

    def _peek_due(self) -> Optional[Timer]:
        while self._queue:
            _, _, timer = self._queue[0]
            if timer.cancelled:
                heapq.heappop(self._queue)
                continue
            return timer
        return None

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the whole queue; guard against runaway loops via max_events."""
        ran = self.run(max_events=max_events)
        if ran >= max_events and self._peek_due() is not None:
            raise SimulationError(f"simulation did not quiesce within {max_events} events")
        return ran

    def advance(self, delay: float) -> int:
        """Run all events due within the next ``delay`` ms and move the
        clock exactly ``delay`` forward."""
        if delay < 0:
            raise SimulationError(f"negative advance: {delay}")
        return self.run(until=self._now + delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventLoop now={self._now:.3f} pending={self.pending}>"
