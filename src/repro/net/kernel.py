"""Discrete-event simulation kernel.

The kernel keeps a priority queue of timestamped callbacks and advances a
global *simulated* clock to each event's due time.  Nothing here sleeps or
reads the wall clock, so experiments are fast and fully deterministic.

Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), which keeps causally
ordered callbacks causally ordered.

The queue is a two-level calendar: a *near* binary heap holding the
soonest events and a *far* dict of coarse time buckets.  Pushes land in
the near heap only when they fall before the already-pulled horizon;
everything else is appended to its bucket in O(1) and heapified only when
its bucket becomes the earliest.  Because entries are ordered by the full
``(due, seq)`` key wherever they sit, the dispatch order is provably
identical to a single binary heap -- the calendar only changes *when* the
ordering work happens, never its result.  Cancelled timers stay behind as
tombstones (cheap, never dispatched) and are compacted away in bulk when
they dominate the queue (see :meth:`EventLoop._compact`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on invalid kernel operations (e.g. scheduling in the past)."""


class Timer:
    """Handle for a scheduled event; supports cancellation.

    Returned by :meth:`EventLoop.call_at` / :meth:`EventLoop.call_later`.
    Cancelling an already fired or already cancelled timer is a no-op.
    """

    __slots__ = ("due", "seq", "callback", "args", "cancelled", "fired",
                 "_loop")

    def __init__(self, due: float, seq: int, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.due = due
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._loop: Optional["EventLoop"] = None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            loop._note_cancel()

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired and not cancelled)."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Timer due={self.due:.3f} {state}>"


class EventLoop:
    """Deterministic discrete-event loop over simulated milliseconds.

    Typical use::

        loop = EventLoop()
        loop.call_later(10.0, hello)
        loop.run()            # drains every event
        loop.now              # -> 10.0
    """

    #: Width of one far-calendar bucket in simulated ms.  Events due within
    #: the current bucket go straight to the near heap; later events are
    #: binned and only heapified when their bucket becomes the earliest.
    _BUCKET_MS = 1024.0
    #: Tombstone compaction trigger: at least this many cancelled entries
    #: *and* tombstones at least half the queue.  High on purpose -- small
    #: scenarios (including the frozen goldens, whose queue never exceeds a
    #: dozen entries) must never observe a compaction, because the raw
    #: :attr:`heap_depth` gauge is part of their pinned traces.
    _COMPACT_MIN_DEAD = 256

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        #: Near heap: ``(due, seq, Timer)`` entries, the only structure
        #: events are popped from.
        self._near: List[Tuple[float, int, Timer]] = []
        #: Far calendar: bucket index -> unsorted entry list.
        self._far: Dict[int, List[Tuple[float, int, Timer]]] = {}
        #: Heap of far bucket indices (no duplicates: an index is present
        #: iff its bucket exists in ``_far``).
        self._bucket_heap: List[int] = []
        #: Highest bucket index already merged into the near heap; pushes
        #: at or below this land in the near heap directly.
        self._pulled_upto = int(self._now // self._BUCKET_MS)
        #: Raw entries across both levels, tombstones included.
        self._size = 0
        #: Cancelled entries still buried in the queue.
        self._dead = 0
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        #: Optional :class:`repro.obs.Observability` hub.  ``None`` (the
        #: default) keeps the dispatch loop entirely uninstrumented -- one
        #: attribute read and an ``is None`` check per event, nothing else.
        self.observability = None
        # Cached metric instrument handles for the dispatch hot path,
        # rebuilt whenever the attached registry changes identity.
        self._metrics_for = None
        self._ev_counter = None
        self._depth_gauge = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of *active* events still queued.

        Cancelled tombstones are excluded: they occupy queue slots (see
        :attr:`heap_depth`) but will never dispatch.
        """
        return self._size - self._dead

    @property
    def heap_depth(self) -> int:
        """Raw queue entries, cancelled tombstones included.

        This is the O(1) depth the kernel gauge and obs hooks report; the
        difference ``heap_depth - pending`` is the current tombstone debt.
        """
        return self._size

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def _note_cancel(self) -> None:
        """A queued timer was cancelled; count the tombstone."""
        self._dead += 1
        if (self._dead >= self._COMPACT_MIN_DEAD
                and self._dead * 2 >= self._size):
            self._compact()

    def _compact(self) -> None:
        """Physically remove every tombstone from both calendar levels.

        Runs in O(live) when the dead fraction crosses the threshold, so
        the amortized cost per cancellation is O(1).  Compaction never
        changes dispatch order (ordering is by the full ``(due, seq)``
        key) -- it only shrinks :attr:`heap_depth`.
        """
        self._near = [e for e in self._near if not e[2].cancelled]
        heapq.heapify(self._near)
        size = len(self._near)
        for index in list(self._far):
            bucket = [e for e in self._far[index] if not e[2].cancelled]
            if bucket:
                self._far[index] = bucket
                size += len(bucket)
            else:
                del self._far[index]
        self._bucket_heap = sorted(self._far)
        self._size = size
        self._dead = 0

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when:.3f} < now {self._now:.3f}"
            )
        timer = Timer(float(when), next(self._seq), callback, args)
        timer._loop = self
        entry = (timer.due, timer.seq, timer)
        index = int(timer.due // self._BUCKET_MS)
        if index <= self._pulled_upto:
            heapq.heappush(self._near, entry)
        else:
            bucket = self._far.get(index)
            if bucket is None:
                self._far[index] = [entry]
                heapq.heappush(self._bucket_heap, index)
            else:
                bucket.append(entry)
        self._size += 1
        return timer

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently running event and anything already queued for *now*)."""
        return self.call_at(self._now, callback, *args)

    def reschedule(self, timer: Timer, when: float) -> Timer:
        """Move a *pending* timer to a new due time.

        Cancels ``timer`` and schedules the same callback/args at ``when``,
        returning the new handle.  Used by the fair-share link engine,
        which must shift its predicted completion event whenever a flow
        joins or leaves a link.  The old queue entry stays behind as a
        cancelled tombstone -- cheap, never dispatched, and compacted away
        in bulk if tombstones ever dominate the queue.

        Rescheduling a timer that already fired raises
        :class:`SimulationError`: its callback has run (or is running), so
        silently re-queueing it would dispatch the event twice.  Callers
        that race completion must check :attr:`Timer.active` first and
        book a fresh timer instead.
        """
        if timer.fired:
            raise SimulationError(
                f"cannot reschedule fired timer for "
                f"{getattr(timer.callback, '__qualname__', timer.callback)!r}: "
                f"its callback already dispatched")
        timer.cancel()
        return self.call_at(when, timer.callback, *timer.args)

    def _pull_far(self) -> None:
        """Turn the earliest far bucket into the new near heap.

        Only called when the near heap is empty.  Safe by construction:
        near entries are always strictly below the pulled horizon
        ``(_pulled_upto + 1) * _BUCKET_MS`` (pushes at or below the
        horizon go near directly), and every entry in far bucket ``i``
        is due at or after ``i * _BUCKET_MS`` -- so the global minimum
        lives in the near heap whenever it is non-empty, and the next
        bucket in line holds it otherwise.
        """
        if not self._bucket_heap:
            return
        index = heapq.heappop(self._bucket_heap)
        self._pulled_upto = index
        entries = self._far.pop(index)
        heapq.heapify(entries)
        self._near = entries

    def _pop_due(self) -> Optional[Timer]:
        near = self._near
        while True:
            if not near:
                self._pull_far()
                near = self._near
                if not near:
                    return None
            _, _, timer = heapq.heappop(near)
            self._size -= 1
            if not timer.cancelled:
                return timer
            self._dead -= 1

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns False when the queue is empty (time does not advance).
        """
        timer = self._pop_due()
        if timer is None:
            return False
        self._now = timer.due
        timer.fired = True
        self._processed += 1
        obs = self.observability
        if obs is None:
            timer.callback(*timer.args)
        else:
            self._dispatch_traced(obs, timer)
        return True

    def _dispatch_traced(self, obs, timer: Timer) -> None:
        """Run one event under the kernel instrumentation.

        The dispatch span is synchronous, so instrumentation fired inside
        the callback (network transfers, ACL events) nests under it; when
        the tracer is disabled the span machinery is skipped entirely.
        The queue-depth gauge samples :attr:`heap_depth` (raw entries,
        tombstones included) to stay O(1) per event.
        """
        metrics = obs.metrics
        if metrics is not self._metrics_for:
            self._metrics_for = metrics
            self._ev_counter = metrics.counter("kernel.events")
            self._depth_gauge = metrics.gauge("kernel.queue_depth")
        self._ev_counter.inc()
        self._depth_gauge.set(self._size)
        callback = timer.callback
        tracer = obs.tracer
        hooks = obs.hooks
        if tracer.enabled or hooks:
            name = (getattr(callback, "__qualname__", "")
                    or type(callback).__name__)
        if tracer.enabled:
            with tracer.span(name, category="kernel"):
                callback(*timer.args)
        else:
            callback(*timer.args)
        if hooks:
            # Post-dispatch checkpoint for runtime invariant checkers
            # (repro.simcheck) and the wall-clock profiler
            # (repro.obs.perf): state has settled for this instant.
            # ``depth`` counts raw queue entries (cancelled tombstones
            # included) so the read stays O(1).
            obs.emit("kernel.event", now=self._now, callback=name,
                     processed=self._processed, depth=self._size)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events run.

        ``until`` is inclusive: events due exactly at ``until`` run, and on
        exit the clock is advanced to ``until`` even if the queue drained
        earlier (so idle time is observable).
        """
        if self._running:
            raise SimulationError("event loop is re-entrant: run() called from a callback")
        self._running = True
        ran = 0
        try:
            while True:
                if max_events is not None and ran >= max_events:
                    break
                timer = self._peek_due()
                if timer is None:
                    break
                if until is not None and timer.due > until:
                    break
                self.step()
                ran += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return ran

    def _peek_due(self) -> Optional[Timer]:
        near = self._near
        while True:
            if not near:
                self._pull_far()
                near = self._near
                if not near:
                    return None
            _, _, timer = near[0]
            if timer.cancelled:
                heapq.heappop(near)
                self._size -= 1
                self._dead -= 1
                continue
            return timer

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the whole queue; guard against runaway loops via max_events."""
        ran = self.run(max_events=max_events)
        if ran >= max_events and self._peek_due() is not None:
            raise SimulationError(f"simulation did not quiesce within {max_events} events")
        return ran

    def advance(self, delay: float) -> int:
        """Run all events due within the next ``delay`` ms and move the
        clock exactly ``delay`` forward."""
        if delay < 0:
            raise SimulationError(f"negative advance: {delay}")
        return self.run(until=self._now + delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventLoop now={self._now:.3f} pending={self.pending}>"
