"""Smart spaces and inter-space gateways (Fig. 1 mobility-domain axis).

The paper distinguishes *intra-space* migration (both hosts inside one smart
space) from *inter-space* migration, which "requires additional gateway
support".  A :class:`Topology` groups hosts into :class:`SmartSpace`s, wires
every pair of hosts inside a space with a LAN-grade link, and joins spaces
through dedicated :class:`Gateway` hosts that charge a forwarding delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.simnet import Host, Network, NetworkError


class TopologyError(NetworkError):
    """Raised on inconsistent topology construction."""


@dataclass
class LinkSpec:
    """Link parameters applied when the topology auto-wires hosts."""

    bandwidth_mbps: float = 10.0
    latency_ms: float = 1.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0


#: The paper's testbed link: 10 Mbps Ethernet, ~1 ms LAN latency.
PAPER_LAN = LinkSpec(bandwidth_mbps=10.0, latency_ms=1.0)

#: A typical inter-space backbone: faster but higher latency than the LAN.
DEFAULT_BACKBONE = LinkSpec(bandwidth_mbps=100.0, latency_ms=5.0)


class SmartSpace:
    """A named smart space (room/zone) containing hosts.

    Hosts inside a space are fully connected with the space's LAN link spec;
    locations (for the context layer) are identified by the space name.
    """

    def __init__(self, name: str, lan: Optional[LinkSpec] = None):
        if not name:
            raise TopologyError("space name must be non-empty")
        self.name = name
        self.lan = lan if lan is not None else PAPER_LAN
        self.host_names: List[str] = []
        self.gateway_name: Optional[str] = None

    def __contains__(self, host_name: str) -> bool:
        return host_name in self.host_names or host_name == self.gateway_name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SmartSpace {self.name} hosts={self.host_names}>"


@dataclass
class Gateway:
    """An inter-space gateway: a host bridging one space to the backbone."""

    name: str
    space: str
    processing_delay_ms: float = 5.0
    host: Host = field(default=None, repr=False)  # type: ignore[assignment]


class Topology:
    """Builder/registry for a multi-space deployment.

    Usage::

        topo = Topology(network)
        topo.add_space("room821")
        topo.add_space("room822")
        h1 = topo.add_host("desk-pc", "room821")
        h2 = topo.add_host("wall-display", "room822")
        topo.add_gateway("gw821", "room821")
        topo.add_gateway("gw822", "room822")
        topo.connect_spaces("room821", "room822")
    """

    def __init__(self, network: Network, backbone: Optional[LinkSpec] = None):
        self.network = network
        self.backbone = backbone if backbone is not None else DEFAULT_BACKBONE
        self._spaces: Dict[str, SmartSpace] = {}
        self._gateways: Dict[str, Gateway] = {}

    # -- construction -----------------------------------------------------

    def add_space(self, name: str, lan: Optional[LinkSpec] = None) -> SmartSpace:
        if name in self._spaces:
            raise TopologyError(f"duplicate space {name!r}")
        space = SmartSpace(name, lan)
        self._spaces[name] = space
        return space

    def add_host(self, name: str, space_name: str, skew_ms: float = 0.0,
                 drift_ppm: float = 0.0, cpu_factor: float = 1.0) -> Host:
        """Create a host inside ``space_name`` and wire it to every host
        already in that space (full LAN mesh)."""
        space = self.space(space_name)
        host = self.network.create_host(name, skew_ms=skew_ms,
                                        drift_ppm=drift_ppm,
                                        cpu_factor=cpu_factor)
        host.space = space_name
        self._wire_into_space(name, space)
        space.host_names.append(name)
        return host

    def adopt_host(self, host: Host, space_name: str) -> Host:
        """Place an already-created host into a space and wire it up."""
        space = self.space(space_name)
        if not self.network.has_host(host.name):
            self.network.add_host(host)
        host.space = space_name
        self._wire_into_space(host.name, space)
        space.host_names.append(host.name)
        return host

    def _wire_into_space(self, name: str, space: SmartSpace) -> None:
        peers = list(space.host_names)
        if space.gateway_name is not None:
            peers.append(space.gateway_name)
        for peer in peers:
            self.network.connect(name, peer,
                                 bandwidth_mbps=space.lan.bandwidth_mbps,
                                 latency_ms=space.lan.latency_ms,
                                 jitter_ms=space.lan.jitter_ms,
                                 loss_rate=space.lan.loss_rate)

    def add_gateway(self, name: str, space_name: str,
                    processing_delay_ms: float = 5.0) -> Gateway:
        """Create the gateway host for a space (one gateway per space)."""
        space = self.space(space_name)
        if space.gateway_name is not None:
            raise TopologyError(f"space {space_name!r} already has a gateway")
        host = self.network.create_host(name)
        host.space = space_name
        for peer in space.host_names:
            self.network.connect(name, peer,
                                 bandwidth_mbps=space.lan.bandwidth_mbps,
                                 latency_ms=space.lan.latency_ms,
                                 jitter_ms=space.lan.jitter_ms,
                                 loss_rate=space.lan.loss_rate)
        self.network.set_forward_delay(name, processing_delay_ms)
        gateway = Gateway(name, space_name, processing_delay_ms, host)
        self._gateways[name] = gateway
        space.gateway_name = name
        return gateway

    def connect_spaces(self, space_a: str, space_b: str,
                       spec: Optional[LinkSpec] = None) -> None:
        """Join two spaces' gateways over the backbone."""
        gw_a = self._require_gateway(space_a)
        gw_b = self._require_gateway(space_b)
        link = spec if spec is not None else self.backbone
        self.network.connect(gw_a.name, gw_b.name,
                             bandwidth_mbps=link.bandwidth_mbps,
                             latency_ms=link.latency_ms,
                             jitter_ms=link.jitter_ms,
                             loss_rate=link.loss_rate)

    def _require_gateway(self, space_name: str) -> Gateway:
        space = self.space(space_name)
        if space.gateway_name is None:
            raise TopologyError(f"space {space_name!r} has no gateway")
        return self._gateways[space.gateway_name]

    def move_host(self, host_name: str, new_space_name: str) -> None:
        """Physically roam a host (e.g. a PDA) to another smart space.

        All LAN links to the old space are torn down and the host is wired
        into the new space's mesh.  Gateways cannot roam.
        """
        host = self.network.host(host_name)
        if host_name in self._gateways:
            raise TopologyError(f"gateway {host_name!r} cannot roam")
        old_space_name = host.space
        if old_space_name == new_space_name:
            return
        new_space = self.space(new_space_name)
        if old_space_name is not None:
            old_space = self.space(old_space_name)
            peers = list(old_space.host_names)
            if old_space.gateway_name is not None:
                peers.append(old_space.gateway_name)
            for peer in peers:
                if peer != host_name and \
                        self.network.link_between(host_name, peer) is not None:
                    self.network.disconnect(host_name, peer)
            old_space.host_names.remove(host_name)
        self._wire_into_space(host_name, new_space)
        new_space.host_names.append(host_name)
        host.space = new_space_name

    # -- queries ----------------------------------------------------------

    def space(self, name: str) -> SmartSpace:
        try:
            return self._spaces[name]
        except KeyError:
            raise TopologyError(f"unknown space {name!r}") from None

    @property
    def spaces(self) -> List[SmartSpace]:
        return list(self._spaces.values())

    @property
    def gateways(self) -> List[Gateway]:
        return list(self._gateways.values())

    def space_of(self, host_name: str) -> str:
        host = self.network.host(host_name)
        if host.space is None:
            raise TopologyError(f"host {host_name!r} is not in any space")
        return host.space

    def same_space(self, host_a: str, host_b: str) -> bool:
        """True when both hosts sit in the same smart space -- the paper's
        intra-space case, which needs no gateway."""
        return self.space_of(host_a) == self.space_of(host_b)

    def mobility_domain(self, host_a: str, host_b: str) -> str:
        """Classify a migration per Fig. 1: ``"intra-space"`` or
        ``"inter-space"``."""
        return "intra-space" if self.same_space(host_a, host_b) else "inter-space"
