"""Hosts, links and byte-accurate message delivery.

The paper's testbed is two PCs joined by 10 Mbps Ethernet; migration cost is
dominated by (serialized payload size) / (link bandwidth).  This module
models that directly:

- a :class:`Link` charges ``latency + bytes * 8 / bandwidth`` per message and
  serializes concurrent transfers (a busy link queues the next message), and
- a :class:`Host` dispatches delivered messages to per-protocol handlers.

Multi-hop routes (e.g. across an inter-space gateway) are store-and-forward:
each hop is charged in sequence, plus any per-gateway processing delay that
:mod:`repro.net.topology` configures.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.clock import HostClock
from repro.net.kernel import EventLoop


class NetworkError(RuntimeError):
    """Base class for network-layer failures."""


class UnreachableHostError(NetworkError):
    """No route exists between the two hosts."""


class HostOfflineError(NetworkError):
    """The source or destination host is offline (crashed or roamed away).

    Transient by nature -- a crashed host may restart -- so the mobility
    layer treats it (like :class:`UnreachableHostError`) as retryable.
    """


class DuplicateHostError(NetworkError):
    """A host with the same name is already part of the network."""


@dataclass
class Message:
    """A network message.

    ``size_bytes`` drives transfer time; ``payload`` is opaque to the network
    and handed verbatim to the destination handler for ``protocol``.
    """

    source: str
    destination: str
    protocol: str
    payload: Any
    size_bytes: int
    message_id: int = field(default=0)
    sent_at: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")


@dataclass
class DeliveryReceipt:
    """Outcome of a send: filled in when the message is delivered or dropped."""

    message: Message
    delivered: bool = False
    dropped: bool = False
    delivered_at: float = 0.0
    hops: int = 0

    @property
    def in_flight(self) -> bool:
        return not (self.delivered or self.dropped)

    @property
    def transfer_ms(self) -> float:
        """End-to-end transfer time; only meaningful once delivered."""
        return self.delivered_at - self.message.sent_at


MessageHandler = Callable[[Message], None]


class Host:
    """A network endpoint with its own (possibly skewed) clock.

    Higher layers (the agent platform, registry, context kernel) attach
    per-protocol handlers; the network invokes the matching handler when a
    message is delivered.
    """

    def __init__(self, name: str, loop: EventLoop, clock: Optional[HostClock] = None,
                 cpu_factor: float = 1.0):
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        self.loop = loop
        self.clock = clock if clock is not None else HostClock(loop)
        #: Relative CPU speed; >1 means slower (handhelds), used by higher
        #: layers to scale local processing costs such as (de)serialization.
        self.cpu_factor = float(cpu_factor)
        self.space: Optional[str] = None
        self._online = True
        #: Set by :meth:`Network.add_host`; called whenever connectivity
        #: state changes so the network can invalidate its route cache.
        self._on_connectivity_change: Optional[Callable[[], None]] = None
        self._handlers: Dict[str, MessageHandler] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_received = 0

    @property
    def online(self) -> bool:
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        if self._on_connectivity_change is not None:
            self._on_connectivity_change()

    def register_handler(self, protocol: str, handler: MessageHandler) -> None:
        """Route delivered messages with ``protocol`` to ``handler``.

        Registering a protocol twice replaces the previous handler.
        """
        self._handlers[protocol] = handler

    def unregister_handler(self, protocol: str) -> None:
        self._handlers.pop(protocol, None)

    def handles(self, protocol: str) -> bool:
        return protocol in self._handlers

    def deliver(self, message: Message) -> None:
        """Called by the network on message arrival; dispatches by protocol.

        Traffic stats count only successfully dispatched messages: a
        message nobody handles raises without inflating
        ``bytes_received`` / ``messages_received``.
        """
        handler = self._handlers.get(message.protocol)
        if handler is None:
            raise NetworkError(
                f"host {self.name!r} has no handler for protocol {message.protocol!r}"
            )
        self.bytes_received += message.size_bytes
        self.messages_received += 1
        handler(message)

    def local_time(self) -> float:
        """Host-local clock reading in ms (includes skew/drift)."""
        return self.clock.now()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name} space={self.space}>"


class Link:
    """A bidirectional point-to-point link.

    Transfers are serialized per direction-agnostic link: a message begins
    transmission when the link frees up, takes ``size*8/bandwidth`` to put on
    the wire, then ``latency`` (plus jitter) to propagate.
    """

    def __init__(self, a: str, b: str, bandwidth_mbps: float = 10.0,
                 latency_ms: float = 1.0, jitter_ms: float = 0.0,
                 loss_rate: float = 0.0):
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_mbps}")
        if latency_ms < 0 or jitter_ms < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1): {loss_rate}")
        self.a = a
        self.b = b
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_ms = float(latency_ms)
        self.jitter_ms = float(jitter_ms)
        self.loss_rate = float(loss_rate)
        self.busy_until = 0.0
        #: Arrival time of the last non-lost message: deliveries on one
        #: link are FIFO, so jitter can never reorder them.
        self.last_arrival = 0.0
        self.bytes_carried = 0
        self.messages_carried = 0

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def connects(self, x: str, y: str) -> bool:
        return {x, y} == {self.a, self.b}

    def transmission_ms(self, size_bytes: int) -> float:
        """Time to serialize ``size_bytes`` onto the wire (no latency)."""
        return size_bytes * 8.0 / (self.bandwidth_mbps * 1e6) * 1e3

    def schedule_transfer(self, now: float, size_bytes: int,
                          rng: random.Random) -> Tuple[float, bool]:
        """Reserve the link and return ``(arrival_time, lost)``.

        The link is busy until the payload has been fully serialized;
        propagation latency overlaps with the next transmission.
        """
        start = max(now, self.busy_until)
        tx = self.transmission_ms(size_bytes)
        self.busy_until = start + tx
        jitter = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
        arrival = start + tx + self.latency_ms + jitter
        # FIFO clamp: a jitter draw smaller than the previous message's can
        # never let this message leapfrog it -- per-link delivery order is
        # transmission order (equal arrival instants keep scheduling order).
        if arrival < self.last_arrival:
            arrival = self.last_arrival
        lost = self.loss_rate > 0 and rng.random() < self.loss_rate
        if not lost:
            self.last_arrival = arrival
            self.bytes_carried += size_bytes
            self.messages_carried += 1
        return arrival, lost

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Link {self.a}<->{self.b} {self.bandwidth_mbps}Mbps "
                f"{self.latency_ms}ms>")


class Network:
    """The simulated network: hosts + links + routing + delivery.

    Routing is hop-minimal (BFS) over the link graph.  Multi-hop messages are
    forwarded store-and-forward with an optional per-host forwarding delay
    (used for inter-space gateways).
    """

    def __init__(self, loop: EventLoop, seed: int = 0):
        self.loop = loop
        self.rng = random.Random(seed)
        self._hosts: Dict[str, Host] = {}
        self._links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._forward_delay: Dict[str, float] = {}
        self._msg_ids = itertools.count(1)
        # (source, destination) -> hop path.  Per-chunk sends would
        # otherwise pay the O(V+E) BFS on every message; the cache is
        # cleared whenever topology or host connectivity changes.
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.messages_dropped = 0
        # Conservation ledger (see repro.simcheck): every byte put on a
        # wire must come off it -- delivered, relayed, or accountably
        # dropped.  At quiescence bytes_on_wire == bytes_off_wire, and
        # bytes_delivered_total == sum of Host.bytes_received.
        self.bytes_on_wire = 0
        self.bytes_off_wire = 0
        self.bytes_delivered_total = 0
        # In-flight transfers per link: (timer, receipt, on_dropped) tuples,
        # so a hard link cut (disconnect(drop_in_flight=True)) can cancel
        # the pending deliveries and fail their receipts.
        self._in_flight: Dict[Link, List[Tuple[Any, DeliveryReceipt,
                                               Optional[Callable]]]] = {}

    # -- construction -----------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise DuplicateHostError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        self._adjacency.setdefault(host.name, [])
        host._on_connectivity_change = self._invalidate_routes
        self._invalidate_routes()
        return host

    def _invalidate_routes(self) -> None:
        """Drop every cached route (topology/connectivity changed)."""
        self._route_cache.clear()

    def create_host(self, name: str, skew_ms: float = 0.0, drift_ppm: float = 0.0,
                    cpu_factor: float = 1.0) -> Host:
        """Convenience: build a Host with its own clock and add it."""
        clock = HostClock(self.loop, skew_ms=skew_ms, drift_ppm=drift_ppm)
        return self.add_host(Host(name, self.loop, clock, cpu_factor=cpu_factor))

    def connect(self, a: str, b: str, bandwidth_mbps: float = 10.0,
                latency_ms: float = 1.0, jitter_ms: float = 0.0,
                loss_rate: float = 0.0) -> Link:
        """Add a bidirectional link between two existing hosts."""
        for name in (a, b):
            if name not in self._hosts:
                raise NetworkError(f"unknown host {name!r}")
        if a == b:
            raise NetworkError(f"cannot link host {a!r} to itself")
        if self.link_between(a, b) is not None:
            raise NetworkError(f"hosts {a!r} and {b!r} are already linked")
        link = Link(a, b, bandwidth_mbps, latency_ms, jitter_ms, loss_rate)
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._invalidate_routes()
        return link

    def disconnect(self, a: str, b: str, drop_in_flight: bool = False) -> Link:
        """Remove the link between two hosts (device roamed away).

        By default (``drop_in_flight=False``, the historical behaviour)
        messages already in flight on the link still arrive: their delivery
        events were scheduled when transmission began, modelling a graceful
        detach that lets the last frames drain.  With
        ``drop_in_flight=True`` the cut is hard -- every in-flight message
        on the link is dropped (its ``on_dropped`` callback fires) -- which
        is what the fault engine uses for link-failure faults.  New sends
        never route over the removed link either way.
        """
        link = self.link_between(a, b)
        if link is None:
            raise NetworkError(f"no link between {a!r} and {b!r}")
        self._links.remove(link)
        self._adjacency[a].remove(link)
        self._adjacency[b].remove(link)
        self._invalidate_routes()
        entries = self._in_flight.pop(link, [])
        if drop_in_flight:
            for timer, receipt, on_dropped in entries:
                if timer.active:
                    timer.cancel()
                    # The cancelled timer was this message's off-wire event
                    # (delivery or next-hop forward), so settle the ledger
                    # here: the bytes left the wire by being destroyed.
                    self.bytes_off_wire += receipt.message.size_bytes
                    self._drop(receipt, on_dropped)
        return link

    def set_forward_delay(self, host: str, delay_ms: float) -> None:
        """Charge ``delay_ms`` whenever ``host`` forwards a multi-hop message
        (gateway processing cost)."""
        if host not in self._hosts:
            raise NetworkError(f"unknown host {host!r}")
        self._forward_delay[host] = float(delay_ms)

    # -- introspection ----------------------------------------------------

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def link_between(self, a: str, b: str) -> Optional[Link]:
        for link in self._adjacency.get(a, []):
            if link.connects(a, b):
                return link
        return None

    def route(self, source: str, destination: str) -> List[str]:
        """Hop-minimal path of host names from source to destination (BFS).

        Offline hosts cannot relay.  Raises UnreachableHostError when no
        path exists.  Successful routes are cached until the topology or
        any host's connectivity changes (failures are never cached: the
        retry path wants a fresh look each time).
        """
        cached = self._route_cache.get((source, destination))
        if cached is not None:
            self.route_cache_hits += 1
            return list(cached)
        path = self._route_bfs(source, destination)
        self._route_cache[(source, destination)] = path
        self.route_cache_misses += 1
        return list(path)

    def _route_bfs(self, source: str, destination: str) -> List[str]:
        if source not in self._hosts or destination not in self._hosts:
            raise NetworkError(f"unknown endpoint {source!r} or {destination!r}")
        if source == destination:
            return [source]
        visited = {source}
        frontier: List[List[str]] = [[source]]
        while frontier:
            next_frontier: List[List[str]] = []
            for path in frontier:
                tail = path[-1]
                for link in self._adjacency[tail]:
                    nxt = link.b if link.a == tail else link.a
                    if nxt in visited:
                        continue
                    if nxt == destination:
                        return path + [nxt]
                    if not self._hosts[nxt].online:
                        continue
                    visited.add(nxt)
                    next_frontier.append(path + [nxt])
            frontier = next_frontier
        raise UnreachableHostError(f"no route from {source!r} to {destination!r}")

    # -- sending ----------------------------------------------------------

    def send(self, source: str, destination: str, protocol: str, payload: Any,
             size_bytes: int,
             on_delivered: Optional[Callable[[DeliveryReceipt], None]] = None,
             on_dropped: Optional[Callable[[DeliveryReceipt], None]] = None
             ) -> DeliveryReceipt:
        """Send a message; returns a receipt updated on delivery/drop.

        Local delivery (source == destination) is immediate but still goes
        through the event loop so handler ordering stays consistent.
        ``on_dropped`` fires if the message is lost on a lossy link or the
        destination goes offline mid-flight.
        """
        src = self.host(source)
        if not src.online:
            raise HostOfflineError(f"source host {source!r} is offline")
        dst = self.host(destination)
        if not dst.online:
            raise HostOfflineError(
                f"destination host {destination!r} is offline")
        message = Message(source, destination, protocol, payload, size_bytes,
                          message_id=next(self._msg_ids), sent_at=self.loop.now)
        receipt = DeliveryReceipt(message)
        path = self.route(source, destination)
        src.bytes_sent += size_bytes
        if len(path) == 1:
            self.loop.call_soon(self._deliver, receipt, on_delivered,
                                on_dropped)
            return receipt
        self._forward(receipt, path, 0, on_delivered, on_dropped)
        return receipt

    def _drop(self, receipt: DeliveryReceipt,
              on_dropped: Optional[Callable[[DeliveryReceipt], None]]) -> None:
        self.messages_dropped += 1
        receipt.dropped = True
        obs = self.loop.observability
        if obs is not None:
            obs.metrics.counter(
                "net.dropped", protocol=receipt.message.protocol).inc()
        if on_dropped is not None:
            on_dropped(receipt)

    def _observe_hop(self, obs, receipt: DeliveryReceipt, link: Link,
                     here: str, there: str, queue_ms: float,
                     arrival: float, lost: bool) -> None:
        """Record one link hop: a transfer span plus per-link series."""
        message = receipt.message
        label = f"{link.a}<->{link.b}"
        metrics = obs.metrics
        metrics.histogram("net.link.queue_ms", link=label).observe(queue_ms)
        if lost:
            metrics.counter("net.link.lost", link=label).inc()
        else:
            metrics.counter("net.link.bytes", link=label).inc(
                message.size_bytes)
            metrics.counter("net.link.messages", link=label).inc()
        span = obs.tracer.begin_span(
            "net.transfer", category="net",
            link=label, hop=f"{here}->{there}", protocol=message.protocol,
            bytes=message.size_bytes, bandwidth_mbps=link.bandwidth_mbps,
            latency_ms=link.latency_ms, queue_ms=queue_ms,
            message_id=message.message_id)
        if lost:
            span.annotate(lost=True)
        # The arrival instant is already known (discrete-event scheduling),
        # so the span can be sealed immediately at its future end time.
        span.end(at=arrival)

    def _forward(self, receipt: DeliveryReceipt, path: List[str], hop_index: int,
                 on_delivered: Optional[Callable[[DeliveryReceipt], None]],
                 on_dropped: Optional[Callable[[DeliveryReceipt], None]]) -> None:
        here, there = path[hop_index], path[hop_index + 1]
        if hop_index > 0:
            # Arrived at a relay: the previous hop's bytes are off the wire
            # whether or not this host can forward them onward.
            self.bytes_off_wire += receipt.message.size_bytes
        if hop_index > 0 and not self._hosts[here].online:
            # The relay crashed while the message was in flight towards it
            # (store-and-forward: an offline gateway loses the message).
            self._drop(receipt, on_dropped)
            return
        link = self.link_between(here, there)
        if link is None:
            # The route was computed at send time; the next hop has since
            # been disconnected (e.g. a link-down fault mid-path).
            self._drop(receipt, on_dropped)
            return
        queue_ms = max(0.0, link.busy_until - self.loop.now)
        arrival, lost = link.schedule_transfer(
            self.loop.now, receipt.message.size_bytes, self.rng)
        obs = self.loop.observability
        if obs is not None:
            self._observe_hop(obs, receipt, link, here, there, queue_ms,
                              arrival, lost)
        if lost:
            # A lossy-link loss is synchronous: the message never occupies
            # the wire (mirrors Link.bytes_carried), so no ledger entry.
            self._drop(receipt, on_dropped)
            return
        receipt.hops += 1
        self.bytes_on_wire += receipt.message.size_bytes
        if hop_index + 2 == len(path):
            timer = self.loop.call_at(arrival, self._deliver, receipt,
                                      on_delivered, on_dropped)
        else:
            delay = self._forward_delay.get(there, 0.0)
            timer = self.loop.call_at(arrival + delay, self._forward, receipt,
                                      path, hop_index + 1, on_delivered,
                                      on_dropped)
        entries = self._in_flight.setdefault(link, [])
        entries[:] = [e for e in entries if e[0].active]
        entries.append((timer, receipt, on_dropped))

    def _deliver(self, receipt: DeliveryReceipt,
                 on_delivered: Optional[Callable[[DeliveryReceipt], None]],
                 on_dropped: Optional[Callable[[DeliveryReceipt], None]] = None
                 ) -> None:
        dst = self._hosts[receipt.message.destination]
        if receipt.hops:
            # Came in over a link (hops == 0 means local delivery).
            self.bytes_off_wire += receipt.message.size_bytes
        if not dst.online:
            self._drop(receipt, on_dropped)
            return
        receipt.delivered = True
        receipt.delivered_at = self.loop.now
        obs = self.loop.observability
        if obs is not None:
            obs.metrics.counter(
                "net.delivered", protocol=receipt.message.protocol).inc()
        dst.deliver(receipt.message)
        self.bytes_delivered_total += receipt.message.size_bytes
        if on_delivered is not None:
            on_delivered(receipt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network hosts={len(self._hosts)} links={len(self._links)}>"
