"""Hosts, links and byte-accurate message delivery.

The paper's testbed is two PCs joined by 10 Mbps Ethernet; migration cost is
dominated by (serialized payload size) / (link bandwidth).  This module
models that directly:

- a :class:`Link` charges ``latency + bytes * 8 / bandwidth`` per message,
  with two traffic classes: **control** messages (ACL/protocol chatter)
  serialize FIFO among themselves at full bandwidth, while **bulk**
  transfers (migration/prestage payloads) share the wire fairly -- ``k``
  concurrent bulk flows each progress at ``bandwidth / k`` (processor
  sharing), so a multi-MB chunk never head-of-line blocks the tiny
  check-out/check-in messages the migration protocol needs to make
  progress, and concurrent migrations overlap instead of serializing.
- a :class:`Host` dispatches delivered messages to per-protocol handlers.

A protocol is *bulk* only if registered via :func:`register_bulk_protocol`
(the agent transfer and middleware data-streaming protocols register
themselves); everything else is control.  When a single bulk flow has the
wire to itself the engine reproduces the historical exclusive-reservation
arithmetic exactly -- timings, RNG draw order and event pattern are
byte-identical to the pre-contention model (the frozen goldens in
``tests/faults/golden/`` pin this).

Multi-hop routes (e.g. across an inter-space gateway) are store-and-forward:
each hop is charged in sequence, plus any per-gateway processing delay that
:mod:`repro.net.topology` configures.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.net.clock import HostClock
from repro.net.kernel import EventLoop
from repro.obs.tracer import NULL_SPAN

#: The two link traffic classes (see :func:`traffic_class`).
CONTROL = "control"
BULK = "bulk"

#: Protocols whose messages are bulk payload transfers.  Module-level and
#: append-only by design: entries are registered at import time by the
#: layers that own the protocols, so classification is deterministic and
#: identical across deployments in one process.
_BULK_PROTOCOLS: set = set()


def register_bulk_protocol(protocol: str) -> None:
    """Classify ``protocol`` as bulk: its messages queue per-flow and share
    link bandwidth fairly with other bulk flows instead of holding an
    exclusive reservation.  Idempotent."""
    _BULK_PROTOCOLS.add(protocol)


def traffic_class(protocol: str) -> str:
    """``BULK`` for registered bulk protocols, ``CONTROL`` for the rest.

    Control is the default on purpose: unknown protocols get the historical
    exclusive-FIFO semantics, so only traffic that explicitly opts in is
    subject to fair sharing.
    """
    return BULK if protocol in _BULK_PROTOCOLS else CONTROL


class NetworkError(RuntimeError):
    """Base class for network-layer failures."""


class UnreachableHostError(NetworkError):
    """No route exists between the two hosts."""


class HostOfflineError(NetworkError):
    """The source or destination host is offline (crashed or roamed away).

    Transient by nature -- a crashed host may restart -- so the mobility
    layer treats it (like :class:`UnreachableHostError`) as retryable.
    """


class DuplicateHostError(NetworkError):
    """A host with the same name is already part of the network."""


@dataclass
class Message:
    """A network message.

    ``size_bytes`` drives transfer time; ``payload`` is opaque to the network
    and handed verbatim to the destination handler for ``protocol``.
    """

    source: str
    destination: str
    protocol: str
    payload: Any
    size_bytes: int
    message_id: int = field(default=0)
    sent_at: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")


@dataclass
class DeliveryReceipt:
    """Outcome of a send: filled in when the message is delivered or dropped."""

    message: Message
    delivered: bool = False
    dropped: bool = False
    delivered_at: float = 0.0
    hops: int = 0

    @property
    def in_flight(self) -> bool:
        return not (self.delivered or self.dropped)

    @property
    def transfer_ms(self) -> float:
        """End-to-end transfer time; only meaningful once delivered."""
        return self.delivered_at - self.message.sent_at


MessageHandler = Callable[[Message], None]


class Host:
    """A network endpoint with its own (possibly skewed) clock.

    Higher layers (the agent platform, registry, context kernel) attach
    per-protocol handlers; the network invokes the matching handler when a
    message is delivered.
    """

    def __init__(self, name: str, loop: EventLoop, clock: Optional[HostClock] = None,
                 cpu_factor: float = 1.0):
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        self.loop = loop
        self.clock = clock if clock is not None else HostClock(loop)
        #: Relative CPU speed; >1 means slower (handhelds), used by higher
        #: layers to scale local processing costs such as (de)serialization.
        self.cpu_factor = float(cpu_factor)
        self.space: Optional[str] = None
        self._online = True
        #: Set by :meth:`Network.add_host`; called whenever connectivity
        #: state changes so the network can invalidate its route cache.
        self._on_connectivity_change: Optional[Callable[[], None]] = None
        self._handlers: Dict[str, MessageHandler] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_received = 0

    @property
    def online(self) -> bool:
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        if self._on_connectivity_change is not None:
            self._on_connectivity_change()

    def register_handler(self, protocol: str, handler: MessageHandler) -> None:
        """Route delivered messages with ``protocol`` to ``handler``.

        Registering a protocol twice replaces the previous handler.
        """
        self._handlers[protocol] = handler

    def unregister_handler(self, protocol: str) -> None:
        self._handlers.pop(protocol, None)

    def handles(self, protocol: str) -> bool:
        return protocol in self._handlers

    def deliver(self, message: Message) -> None:
        """Called by the network on message arrival; dispatches by protocol.

        Traffic stats count only successfully dispatched messages: a
        message nobody handles raises without inflating
        ``bytes_received`` / ``messages_received``.
        """
        handler = self._handlers.get(message.protocol)
        if handler is None:
            raise NetworkError(
                f"host {self.name!r} has no handler for protocol {message.protocol!r}"
            )
        self.bytes_received += message.size_bytes
        self.messages_received += 1
        handler(message)

    def local_time(self) -> float:
        """Host-local clock reading in ms (includes skew/drift)."""
        return self.clock.now()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name} space={self.space}>"


class _BulkJob:
    """One bulk message's passage over a link (see :class:`Link`)."""

    __slots__ = ("size_bytes", "remaining", "jitter", "lost", "finish_tx",
                 "arrival", "flow", "dispatch", "on_arrival", "timer",
                 "receipt", "on_dropped")

    def __init__(self, size_bytes: int, jitter: float, lost: bool, flow,
                 dispatch, on_arrival, receipt, on_dropped):
        self.size_bytes = size_bytes
        #: Bytes still to serialize (fluid-model state; only authoritative
        #: while the job sits in its flow queue under contention).
        self.remaining = float(size_bytes)
        self.jitter = jitter
        self.lost = lost
        #: Absolute time the last byte leaves the wire (set when known).
        self.finish_tx = 0.0
        #: Analytic arrival instant; set only for batch members (see
        #: :meth:`Link.book_bulk_window`), whose delivery is deferred to
        #: the shared batch timer.
        self.arrival = 0.0
        self.flow = flow
        #: Network-supplied scheduler: ``dispatch(arrival) -> Timer`` books
        #: the delivery/forward event.  ``None`` for lost phantoms.
        self.dispatch = dispatch
        self.on_arrival = on_arrival
        self.timer = None
        self.receipt = receipt
        self.on_dropped = on_dropped


class _BulkFlow:
    """Per-(source, destination) FIFO of bulk jobs on one link.

    Chunks of one transfer serialize within their flow (preserving the
    go-back-N window semantics); distinct flows share the wire fairly.
    """

    __slots__ = ("key", "jobs", "cursor", "last_arrival")

    def __init__(self, key):
        self.key = key
        self.jobs: Deque[_BulkJob] = deque()
        #: When the flow's last enqueued byte finishes serializing --
        #: the flow-local analogue of the control lane's ``busy_until``
        #: (authoritative only while the link is uncontended).
        self.cursor = 0.0
        #: FIFO clamp: within a flow, jitter can never reorder deliveries.
        self.last_arrival = 0.0


class _BulkBatch:
    """One analytic window round: W chunks of a single flow whose wire
    times were computed arithmetically up front, deferred behind a single
    shared kernel timer (see :meth:`Network.send_window`)."""

    __slots__ = ("flow", "jobs", "timer", "complete")

    def __init__(self, flow: _BulkFlow, jobs: List[_BulkJob], complete):
        self.flow = flow
        self.jobs = jobs
        self.timer = None
        #: ``complete(jobs)`` replays the member deliveries in order.
        self.complete = complete


class Link:
    """A bidirectional point-to-point link with two traffic classes.

    *Control* messages serialize FIFO among themselves (a busy control lane
    queues the next control message) at full bandwidth -- the historical
    exclusive-reservation model.  *Bulk* messages queue per flow
    (source, destination) and concurrent flows share the wire by processor
    sharing: ``k`` active flows each serialize at ``bandwidth / k``, with
    finish times recomputed whenever a flow joins or leaves.  A single bulk
    flow with the wire to itself reproduces the exclusive-reservation
    arithmetic exactly (byte-identical single-flow guarantee).
    """

    #: Slack for float comparisons in the fluid bulk engine (bytes / ms).
    _EPS = 1e-9

    def __init__(self, a: str, b: str, bandwidth_mbps: float = 10.0,
                 latency_ms: float = 1.0, jitter_ms: float = 0.0,
                 loss_rate: float = 0.0):
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_mbps}")
        if latency_ms < 0 or jitter_ms < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1): {loss_rate}")
        self.a = a
        self.b = b
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_ms = float(latency_ms)
        self.jitter_ms = float(jitter_ms)
        self.loss_rate = float(loss_rate)
        #: Control-lane reservation: when the last control message's final
        #: byte leaves the wire.  (Bulk flows keep their own cursors.)
        self.busy_until = 0.0
        #: Arrival time of the last non-lost control message: control
        #: deliveries on one link are FIFO, so jitter can never reorder
        #: them.  (Bulk flows carry their own per-flow clamp.)
        self.last_arrival = 0.0
        self.bytes_carried = 0
        self.messages_carried = 0
        #: Loss accounting (previously invisible: lost messages occupied
        #: the wire but appeared in no counter).
        self.bytes_dropped = 0
        self.messages_dropped = 0
        #: Cumulative wire occupancy per traffic class, in ms of
        #: transmission time (lost phantoms included -- they burn wire).
        self.class_busy_ms: Dict[str, float] = {CONTROL: 0.0, BULK: 0.0}
        # -- bulk fair-share engine state ---------------------------------
        self._flows: Dict[Tuple[str, str], _BulkFlow] = {}
        #: True while >= 2 bulk flows contend (fluid mode); False on the
        #: uncontended fast path that mirrors the legacy arithmetic.
        self._contended = False
        self._fluid_at = 0.0
        self._tick_timer = None
        self._loop: Optional[EventLoop] = None
        #: Jobs fully serialized but still propagating (latency in flight);
        #: kept so a hard link cut can cancel their deliveries.
        self._latency_flight: List[_BulkJob] = []
        #: Analytic window batches in flight (see Network.send_window):
        #: whole uncontended window rounds booked under one kernel timer.
        self._batches: List["_BulkBatch"] = []
        # Cached per-link metric handles, rebuilt when the registry
        # changes identity (see Network._observe_hop).
        self._obs_ok = None
        self._obs_lost = None

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def connects(self, x: str, y: str) -> bool:
        return {x, y} == {self.a, self.b}

    def transmission_ms(self, size_bytes: int) -> float:
        """Time to serialize ``size_bytes`` onto the wire (no latency)."""
        return size_bytes * 8.0 / (self.bandwidth_mbps * 1e6) * 1e3

    # -- control lane ------------------------------------------------------

    def schedule_transfer(self, now: float, size_bytes: int,
                          rng: random.Random) -> Tuple[float, bool]:
        """Reserve the control lane and return ``(arrival_time, lost)``.

        The lane is busy until the payload has been fully serialized;
        propagation latency overlaps with the next transmission.  Control
        messages never wait behind bulk transfers: a small ACL message sent
        mid-bulk-chunk arrives in O(latency).
        """
        start = max(now, self.busy_until)
        tx = self.transmission_ms(size_bytes)
        self.busy_until = start + tx
        self.class_busy_ms[CONTROL] += tx
        jitter = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
        arrival = start + tx + self.latency_ms + jitter
        # FIFO clamp: a jitter draw smaller than the previous message's can
        # never let this message leapfrog it -- per-link delivery order is
        # transmission order (equal arrival instants keep scheduling order).
        if arrival < self.last_arrival:
            arrival = self.last_arrival
        lost = self.loss_rate > 0 and rng.random() < self.loss_rate
        if not lost:
            self.last_arrival = arrival
            self.bytes_carried += size_bytes
            self.messages_carried += 1
        else:
            self.bytes_dropped += size_bytes
            self.messages_dropped += 1
        return arrival, lost

    # -- bulk lane (per-flow FIFO + processor sharing) ---------------------

    def enqueue_bulk(self, loop: EventLoop, now: float,
                     flow_key: Tuple[str, str], size_bytes: int,
                     rng: random.Random,
                     dispatch: Optional[Callable[[float], Any]],
                     receipt=None, on_dropped=None,
                     on_arrival: Optional[Callable[[float], None]] = None
                     ) -> Tuple[Optional[float], bool]:
        """Enqueue one bulk message; returns ``(arrival, lost)``.

        ``dispatch(arrival)`` must book the delivery/forward event and
        return its timer; the engine invokes it synchronously when the
        finish time is already known (uncontended fast path, ``arrival`` is
        returned non-``None``) or later, from its completion tick, when
        flows contend (``arrival`` is ``None``; ``on_arrival`` fires once
        the time is known).  A lost message is reported synchronously
        (legacy drop timing) but still burns its wire time as a phantom in
        the flow queue.
        """
        self._loop = loop
        flow = self._flows.get(flow_key)
        if flow is None:
            flow = self._flows[flow_key] = _BulkFlow(flow_key)
        tx = self.transmission_ms(size_bytes)
        self.class_busy_ms[BULK] += tx
        # Same RNG draw order as the control lane: jitter, then loss.
        jitter = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
        lost = self.loss_rate > 0 and rng.random() < self.loss_rate
        if not lost:
            self.bytes_carried += size_bytes
            self.messages_carried += 1
        else:
            self.bytes_dropped += size_bytes
            self.messages_dropped += 1
        job = _BulkJob(size_bytes, jitter, lost, flow,
                       None if lost else dispatch,
                       None if lost else on_arrival, receipt, on_dropped)
        if not self._contended:
            if len(self._flows) == 1 or not any(
                    f.cursor > now + self._EPS and f is not flow
                    for f in self._flows.values()):
                # Uncontended: exactly the legacy exclusive-reservation
                # arithmetic, against this flow's own cursor.
                start = max(now, flow.cursor)
                finish = start + tx
                flow.cursor = finish
                if lost:
                    return None, True
                arrival = finish + self.latency_ms + jitter
                if arrival < flow.last_arrival:
                    arrival = flow.last_arrival
                flow.last_arrival = arrival
                job.finish_tx = finish
                job.timer = dispatch(arrival)
                self._prune_latency_flight()
                self._latency_flight.append(job)
                return arrival, False
            self._begin_contention(now)
        else:
            self._advance(now)
        flow.jobs.append(job)
        self._retune(now)
        return None, lost

    def bulk_window_eligible(self, flow_key: Tuple[str, str],
                             now: float) -> bool:
        """True when a whole window round can be booked analytically:
        deterministic wire (no jitter, no loss) and no *other* bulk flow
        active -- the same gate :meth:`enqueue_bulk` uses for its
        uncontended fast path."""
        if self._contended or self.jitter_ms > 0 or self.loss_rate > 0:
            return False
        for f in self._flows.values():
            if f.key != flow_key and f.cursor > now + self._EPS:
                return False
        return True

    def book_bulk_window(self, loop: EventLoop, now: float,
                         flow_key: Tuple[str, str], entries, complete
                         ) -> List[_BulkJob]:
        """Analytic fast path: book one window round in a single event.

        ``entries`` is ``[(size_bytes, dispatch, receipt, on_dropped)]``.
        Every member's start / finish / arrival is the exact arithmetic
        :meth:`enqueue_bulk` would have produced uncontended (the wire is
        deterministic by precondition, so there are no RNG draws either
        way), but instead of one kernel timer per chunk a single timer at
        the *last* member's arrival fires ``complete(jobs)``, which
        replays the deliveries in order.  ``dispatch`` is held in reserve:
        if contention dissolves the batch mid-round, members fall back to
        individually booked deliveries.

        Caller must have checked :meth:`bulk_window_eligible`.
        """
        self._loop = loop
        flow = self._flows.get(flow_key)
        if flow is None:
            flow = self._flows[flow_key] = _BulkFlow(flow_key)
        cursor = max(now, flow.cursor)
        last_arrival = flow.last_arrival
        latency = self.latency_ms
        jobs: List[_BulkJob] = []
        for size, dispatch, receipt, on_dropped in entries:
            tx = self.transmission_ms(size)
            self.class_busy_ms[BULK] += tx
            self.bytes_carried += size
            self.messages_carried += 1
            job = _BulkJob(size, 0.0, False, flow, dispatch, None, receipt,
                           on_dropped)
            cursor += tx
            job.finish_tx = cursor
            arrival = cursor + latency
            if arrival < last_arrival:
                arrival = last_arrival
            last_arrival = arrival
            job.arrival = arrival
            jobs.append(job)
        flow.cursor = cursor
        flow.last_arrival = last_arrival
        batch = _BulkBatch(flow, jobs, complete)
        batch.timer = loop.call_at(last_arrival, self._complete_batch, batch)
        self._batches.append(batch)
        return jobs

    def _complete_batch(self, batch: _BulkBatch) -> None:
        self._batches.remove(batch)
        batch.timer = None
        batch.complete(batch.jobs)

    def _prune_latency_flight(self) -> None:
        self._latency_flight[:] = [j for j in self._latency_flight
                                   if j.timer is not None and j.timer.active]

    def _begin_contention(self, now: float) -> None:
        """A second flow joined while the wire was occupied: switch from
        arithmetic reservations to the fluid processor-sharing model.

        Jobs whose transmission already finished keep their booked
        deliveries (only latency remains for them); jobs still (or not yet)
        serializing are pulled back into their flow queues with their
        untransmitted remainder, and their booked deliveries cancelled.
        """
        full_rate = self.bandwidth_mbps * 125.0  # bytes per ms
        still_flying: List[_BulkJob] = []
        for job in self._latency_flight:
            if job.timer is None or not job.timer.active:
                continue
            if job.finish_tx > now + self._EPS:
                job.timer.cancel()
                job.timer = None
                job.remaining = (job.finish_tx - now) * full_rate
                job.flow.jobs.append(job)
            else:
                still_flying.append(job)
        self._latency_flight = still_flying
        for batch in self._batches:
            # Dissolve analytic batches: a shared timer can no longer
            # stand in for per-member deliveries once the wire rate
            # changes.  Fully serialized members get individual delivery
            # events (late members deliver at ``now``); members still
            # serializing rejoin their flow queue with the untransmitted
            # remainder, exactly like pulled-back latency-flight jobs.
            if batch.timer is not None and batch.timer.active:
                batch.timer.cancel()
            batch.timer = None
            for job in batch.jobs:
                if job.finish_tx > now + self._EPS:
                    job.remaining = (job.finish_tx - now) * full_rate
                    job.flow.jobs.append(job)
                else:
                    when = job.arrival if job.arrival > now else now
                    job.timer = job.dispatch(when)
                    self._latency_flight.append(job)
        self._batches = []
        self._fluid_at = now
        self._contended = True

    def _advance(self, to: float) -> None:
        """Drain fluid service up to ``to``.

        The completion tick is always scheduled at the earliest head
        finish, so no head can complete strictly inside the interval --
        at most exactly at ``to``.
        """
        dt = to - self._fluid_at
        self._fluid_at = to
        active = [f for f in self._flows.values() if f.jobs]
        if not active:
            return
        rate = self.bandwidth_mbps * 125.0 / len(active)
        for flow in active:
            budget = rate * max(0.0, dt)
            while flow.jobs:
                head = flow.jobs[0]
                if head.remaining <= 1e-6:
                    # Zero-size messages (and float dust) finish instantly.
                    self._complete_head(flow, to)
                    continue
                if budget <= self._EPS:
                    break
                take = budget if budget < head.remaining else head.remaining
                head.remaining -= take
                budget -= take

    def _complete_head(self, flow: _BulkFlow, t: float) -> None:
        job = flow.jobs.popleft()
        flow.cursor = t
        if job.lost:
            return  # phantom: wire time burned, drop already reported
        job.finish_tx = t
        arrival = t + self.latency_ms + job.jitter
        if arrival < flow.last_arrival:
            arrival = flow.last_arrival
        flow.last_arrival = arrival
        job.timer = job.dispatch(arrival)
        if job.on_arrival is not None:
            job.on_arrival(arrival)
        self._latency_flight.append(job)

    def _bulk_tick(self) -> None:
        now = self._loop.now
        self._tick_timer = None
        self._advance(now)
        self._retune(now)

    def _retune(self, now: float) -> None:
        """(Re)schedule the completion tick at the earliest head finish."""
        active = [f for f in self._flows.values() if f.jobs]
        if not active:
            if self._tick_timer is not None and self._tick_timer.active:
                self._tick_timer.cancel()
            self._tick_timer = None
            # Drained: the next lone flow takes the uncontended fast path.
            self._contended = False
            return
        rate = self.bandwidth_mbps * 125.0 / len(active)
        due = now + min(f.jobs[0].remaining for f in active) / rate
        # Clamp the tick strictly forward of ``now`` in *representable*
        # float time.  A job re-queued by _begin_contention with a
        # dust-sized remainder wants a tick delta below ulp(now) at
        # day-scale sim times; ``now + delta == now`` then pins the loop
        # to one instant forever (each zero-dt advance renders no service,
        # so the head never completes).  The clamp costs at most ~1e-12
        # relative sim-time error and only engages on dust.
        floor = now + max(self._EPS, abs(now) * 1e-12)
        if due < floor:
            due = floor
        if self._tick_timer is not None and self._tick_timer.active:
            self._tick_timer = self._loop.reschedule(self._tick_timer, due)
        else:
            self._tick_timer = self._loop.call_at(due, self._bulk_tick)

    def set_bandwidth(self, bandwidth_mbps: float,
                      now: Optional[float] = None) -> None:
        """Change link bandwidth, re-rating in-flight fair-share transfers.

        Fluid service already rendered is settled at the old rate first;
        uncontended reservations booked before the change keep their
        arithmetic finish times (the historical fault-engine semantics).
        """
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_mbps}")
        if self._contended and self._loop is not None:
            at = self._loop.now if now is None else now
            self._advance(at)
            self.bandwidth_mbps = float(bandwidth_mbps)
            self._retune(at)
        else:
            self.bandwidth_mbps = float(bandwidth_mbps)

    def abort_bulk(self) -> List[_BulkJob]:
        """Hard cut: cancel every pending bulk job on this link.

        Returns the cancelled jobs (queued and latency-flight alike) so
        the network can settle the byte ledger and fail their receipts;
        lost phantoms were already reported and are simply discarded.
        """
        aborted: List[_BulkJob] = []
        if self._tick_timer is not None and self._tick_timer.active:
            self._tick_timer.cancel()
        self._tick_timer = None
        now = self._loop.now if self._loop is not None else 0.0
        for batch in self._batches:
            if batch.timer is not None and batch.timer.active:
                batch.timer.cancel()
            batch.timer = None
            # Members whose analytic arrival already passed were only
            # *administratively* undelivered -- the cut cannot retract
            # bytes that reached the far end.  Deliver that prefix (late,
            # but stamped with its true arrival) so checkpointed resume
            # sees the same acked base the per-chunk path would have.
            arrived = [j for j in batch.jobs
                       if j.arrival <= now + self._EPS]
            if arrived:
                batch.complete(arrived)
            aborted.extend(j for j in batch.jobs
                           if j.arrival > now + self._EPS)
        self._batches = []
        for flow in self._flows.values():
            for job in flow.jobs:
                if not job.lost:
                    aborted.append(job)
            flow.jobs.clear()
            flow.cursor = 0.0
        for job in self._latency_flight:
            if job.timer is not None and job.timer.active:
                job.timer.cancel()
                aborted.append(job)
        self._latency_flight = []
        self._contended = False
        return aborted

    def bulk_queue_ms(self, flow_key: Tuple[str, str], now: float) -> float:
        """Predicted wait before a new message of ``flow_key`` starts
        serializing (the bulk analogue of ``busy_until - now``)."""
        flow = self._flows.get(flow_key)
        if not self._contended:
            return max(0.0, flow.cursor - now) if flow is not None else 0.0
        active = sum(1 for f in self._flows.values() if f.jobs)
        backlog = sum(j.remaining for j in flow.jobs) if flow is not None \
            else 0.0
        if flow is None or not flow.jobs:
            active += 1  # this flow would join the sharing set
        rate = self.bandwidth_mbps * 125.0 / max(1, active)
        return backlog / rate

    def bulk_queue_depth(self) -> int:
        """Bulk messages queued or serializing (not yet fully on the wire)."""
        return sum(len(f.jobs) for f in self._flows.values())

    @property
    def bulk_contended(self) -> bool:
        """True while concurrent bulk flows are sharing the wire."""
        return self._contended

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Link {self.a}<->{self.b} {self.bandwidth_mbps}Mbps "
                f"{self.latency_ms}ms>")


class Network:
    """The simulated network: hosts + links + routing + delivery.

    Routing is hop-minimal (BFS) over the link graph.  Multi-hop messages are
    forwarded store-and-forward with an optional per-host forwarding delay
    (used for inter-space gateways).
    """

    def __init__(self, loop: EventLoop, seed: int = 0):
        self.loop = loop
        self.rng = random.Random(seed)
        self._hosts: Dict[str, Host] = {}
        self._links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._forward_delay: Dict[str, float] = {}
        self._msg_ids = itertools.count(1)
        # (source, destination) -> hop path.  Per-chunk sends would
        # otherwise pay the O(V+E) BFS on every message; the cache is
        # cleared whenever topology or host connectivity changes.
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.messages_dropped = 0
        # Conservation ledger (see repro.simcheck): every byte put on a
        # wire must come off it -- delivered, relayed, or accountably
        # dropped.  At quiescence bytes_on_wire == bytes_off_wire, and
        # bytes_delivered_total == sum of Host.bytes_received.  Lossy-link
        # drops enter and leave the ledger in one step (they occupy wire
        # time, so they must be visible), and per-hop they land in the
        # link's bytes_carried or bytes_dropped counter -- so at any time
        # bytes_on_wire == sum(link carried + dropped) + retired_link_bytes.
        self.bytes_on_wire = 0
        self.bytes_off_wire = 0
        self.bytes_delivered_total = 0
        #: Carried+dropped totals of links since removed by disconnect(),
        #: so the link-level reconciliation survives topology changes.
        self.retired_link_bytes = 0
        # In-flight transfers per link: (timer, receipt, on_dropped) tuples,
        # so a hard link cut (disconnect(drop_in_flight=True)) can cancel
        # the pending deliveries and fail their receipts.
        self._in_flight: Dict[Link, List[Tuple[Any, DeliveryReceipt,
                                               Optional[Callable]]]] = {}
        # O(1) link lookup by (endpoint, endpoint); maintained by
        # connect()/disconnect().  link_between() used to scan the
        # adjacency list, which is a per-hop cost on every send.
        self._pair_links: Dict[Tuple[str, str], Link] = {}
        # Cached per-protocol delivered/dropped counter handles, rebuilt
        # when the attached metrics registry changes identity.
        self._metrics_for = None
        self._proto_counters: Dict[Tuple[str, str], Any] = {}

    # -- construction -----------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise DuplicateHostError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        self._adjacency.setdefault(host.name, [])
        host._on_connectivity_change = self._invalidate_routes
        self._invalidate_routes()
        return host

    def _invalidate_routes(self) -> None:
        """Drop every cached route (topology/connectivity changed)."""
        self._route_cache.clear()

    def create_host(self, name: str, skew_ms: float = 0.0, drift_ppm: float = 0.0,
                    cpu_factor: float = 1.0) -> Host:
        """Convenience: build a Host with its own clock and add it."""
        clock = HostClock(self.loop, skew_ms=skew_ms, drift_ppm=drift_ppm)
        return self.add_host(Host(name, self.loop, clock, cpu_factor=cpu_factor))

    def connect(self, a: str, b: str, bandwidth_mbps: float = 10.0,
                latency_ms: float = 1.0, jitter_ms: float = 0.0,
                loss_rate: float = 0.0) -> Link:
        """Add a bidirectional link between two existing hosts."""
        for name in (a, b):
            if name not in self._hosts:
                raise NetworkError(f"unknown host {name!r}")
        if a == b:
            raise NetworkError(f"cannot link host {a!r} to itself")
        if self.link_between(a, b) is not None:
            raise NetworkError(f"hosts {a!r} and {b!r} are already linked")
        link = Link(a, b, bandwidth_mbps, latency_ms, jitter_ms, loss_rate)
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._pair_links[(a, b)] = link
        self._pair_links[(b, a)] = link
        self._invalidate_routes()
        return link

    def disconnect(self, a: str, b: str, drop_in_flight: bool = False) -> Link:
        """Remove the link between two hosts (device roamed away).

        By default (``drop_in_flight=False``, the historical behaviour)
        messages already in flight on the link still arrive: their delivery
        events were scheduled when transmission began, modelling a graceful
        detach that lets the last frames drain.  With
        ``drop_in_flight=True`` the cut is hard -- every in-flight message
        on the link is dropped (its ``on_dropped`` callback fires) -- which
        is what the fault engine uses for link-failure faults.  New sends
        never route over the removed link either way.
        """
        link = self.link_between(a, b)
        if link is None:
            raise NetworkError(f"no link between {a!r} and {b!r}")
        self._links.remove(link)
        self._adjacency[a].remove(link)
        self._adjacency[b].remove(link)
        del self._pair_links[(a, b)]
        del self._pair_links[(b, a)]
        self._invalidate_routes()
        # Retire the link's per-hop counters so the link-level byte
        # reconciliation (simcheck) survives the topology change.  A later
        # connect() of the same pair builds a fresh Link: zeroed counters,
        # idle lanes (busy_until == last_arrival == 0).
        self.retired_link_bytes += link.bytes_carried + link.bytes_dropped
        entries = self._in_flight.pop(link, [])
        if drop_in_flight:
            for timer, receipt, on_dropped in entries:
                if timer.active:
                    timer.cancel()
                    # The cancelled timer was this message's off-wire event
                    # (delivery or next-hop forward), so settle the ledger
                    # here: the bytes left the wire by being destroyed.
                    self.bytes_off_wire += receipt.message.size_bytes
                    self._drop(receipt, on_dropped)
            for job in link.abort_bulk():
                # Bulk jobs (queued, serializing or propagating) went
                # on-wire at enqueue; destroy them and settle likewise.
                self.bytes_off_wire += job.size_bytes
                if job.on_arrival is not None:
                    # Seal the hop span at the cut instant.
                    job.on_arrival(self.loop.now)
                self._drop(job.receipt, job.on_dropped)
        return link

    def set_forward_delay(self, host: str, delay_ms: float) -> None:
        """Charge ``delay_ms`` whenever ``host`` forwards a multi-hop message
        (gateway processing cost)."""
        if host not in self._hosts:
            raise NetworkError(f"unknown host {host!r}")
        self._forward_delay[host] = float(delay_ms)

    # -- introspection ----------------------------------------------------

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def link_between(self, a: str, b: str) -> Optional[Link]:
        return self._pair_links.get((a, b))

    def route(self, source: str, destination: str) -> List[str]:
        """Hop-minimal path of host names from source to destination (BFS).

        Offline hosts cannot relay.  Raises UnreachableHostError when no
        path exists.  Successful routes are cached until the topology or
        any host's connectivity changes (failures are never cached: the
        retry path wants a fresh look each time).
        """
        cached = self._route_cache.get((source, destination))
        if cached is not None:
            self.route_cache_hits += 1
            return list(cached)
        path = self._route_bfs(source, destination)
        self._route_cache[(source, destination)] = path
        self.route_cache_misses += 1
        return list(path)

    def _route_bfs(self, source: str, destination: str) -> List[str]:
        if source not in self._hosts or destination not in self._hosts:
            raise NetworkError(f"unknown endpoint {source!r} or {destination!r}")
        if source == destination:
            return [source]
        visited = {source}
        frontier: List[List[str]] = [[source]]
        while frontier:
            next_frontier: List[List[str]] = []
            for path in frontier:
                tail = path[-1]
                for link in self._adjacency[tail]:
                    nxt = link.b if link.a == tail else link.a
                    if nxt in visited:
                        continue
                    if nxt == destination:
                        return path + [nxt]
                    if not self._hosts[nxt].online:
                        continue
                    visited.add(nxt)
                    next_frontier.append(path + [nxt])
            frontier = next_frontier
        raise UnreachableHostError(f"no route from {source!r} to {destination!r}")

    # -- sending ----------------------------------------------------------

    def send(self, source: str, destination: str, protocol: str, payload: Any,
             size_bytes: int,
             on_delivered: Optional[Callable[[DeliveryReceipt], None]] = None,
             on_dropped: Optional[Callable[[DeliveryReceipt], None]] = None
             ) -> DeliveryReceipt:
        """Send a message; returns a receipt updated on delivery/drop.

        Local delivery (source == destination) is immediate but still goes
        through the event loop so handler ordering stays consistent.
        ``on_dropped`` fires if the message is lost on a lossy link or the
        destination goes offline mid-flight.
        """
        src = self.host(source)
        if not src.online:
            raise HostOfflineError(f"source host {source!r} is offline")
        dst = self.host(destination)
        if not dst.online:
            raise HostOfflineError(
                f"destination host {destination!r} is offline")
        message = Message(source, destination, protocol, payload, size_bytes,
                          message_id=next(self._msg_ids), sent_at=self.loop.now)
        receipt = DeliveryReceipt(message)
        path = self.route(source, destination)
        src.bytes_sent += size_bytes
        if len(path) == 1:
            self.loop.call_soon(self._deliver, receipt, on_delivered,
                                on_dropped)
            return receipt
        self._forward(receipt, path, 0, on_delivered, on_dropped)
        return receipt

    def send_window(self, source: str, destination: str, protocol: str,
                    chunks) -> Optional[List[DeliveryReceipt]]:
        """Analytic fast path: book a whole bulk window round at once.

        ``chunks`` is ``[(payload, size_bytes, on_delivered, on_dropped)]``
        for one flow.  On a *direct*, deterministic (no jitter, no loss),
        uncontended link the entire round's wire times are a closed-form
        computation -- identical to what per-chunk :meth:`send` would
        produce -- so one kernel event at the last arrival replays all
        deliveries (each receipt stamped with its own analytic arrival)
        instead of one event per chunk.  Returns the receipts, or ``None``
        when the fast path does not apply (multi-hop route, jitter, loss,
        contention, non-bulk protocol): the caller must then fall back to
        per-chunk :meth:`send`, whose semantics are unchanged.

        Offline endpoints raise exactly like :meth:`send`.
        """
        if len(chunks) < 2 or traffic_class(protocol) != BULK \
                or source == destination:
            return None
        src = self.host(source)
        if not src.online:
            raise HostOfflineError(f"source host {source!r} is offline")
        dst = self.host(destination)
        if not dst.online:
            raise HostOfflineError(
                f"destination host {destination!r} is offline")
        link = self.link_between(source, destination)
        if link is None:
            return None
        loop = self.loop
        now = loop.now
        flow_key = (source, destination)
        if not link.bulk_window_eligible(flow_key, now):
            return None
        receipts: List[DeliveryReceipt] = []
        entries = []
        deliver_cbs = []
        for payload, size, on_delivered, on_dropped in chunks:
            message = Message(source, destination, protocol, payload, size,
                              message_id=next(self._msg_ids), sent_at=now)
            receipt = DeliveryReceipt(message)

            def dispatch(arrival: float, receipt=receipt,
                         on_delivered=on_delivered, on_dropped=on_dropped):
                # Fallback for a batch dissolved by contention: book this
                # member's delivery individually, like enqueue_bulk would.
                return loop.call_at(arrival, self._deliver, receipt,
                                    on_delivered, on_dropped)

            entries.append((size, dispatch, receipt, on_dropped))
            deliver_cbs.append(on_delivered)
            receipts.append(receipt)
        jobs = link.book_bulk_window(
            loop, now, flow_key, entries,
            lambda jobs: self._deliver_batch(jobs, deliver_cbs))
        obs = loop.observability
        queue_ms = link.bulk_queue_ms(flow_key, now)
        for job, receipt in zip(jobs, receipts):
            receipt.hops = 1
            src.bytes_sent += job.size_bytes
            self.bytes_on_wire += job.size_bytes
            if obs is not None:
                # Same per-chunk series the pump records; each chunk's
                # queue time is its wait behind the round's earlier chunks.
                self._observe_hop(obs, receipt, link, source, destination,
                                  queue_ms, job.arrival, False)
            queue_ms += link.transmission_ms(job.size_bytes)
        return receipts

    def _deliver_batch(self, jobs: List[_BulkJob], deliver_cbs) -> None:
        """Replay an analytic batch's member deliveries in order.

        Fired by the batch's single kernel timer at the *last* member's
        arrival (or early, with an arrived prefix, when a hard link cut
        dissolves the batch); each receipt is stamped with its own
        analytic arrival, not the event's fire time.
        """
        obs = self.loop.observability
        for job, on_delivered in zip(jobs, deliver_cbs):
            receipt = job.receipt
            size = receipt.message.size_bytes
            self.bytes_off_wire += size
            dst = self._hosts[receipt.message.destination]
            if not dst.online:
                self._drop(receipt, job.on_dropped)
                continue
            receipt.delivered = True
            receipt.delivered_at = job.arrival
            if obs is not None:
                self._proto_counter(obs.metrics, "delivered",
                                    receipt.message.protocol).inc()
            dst.deliver(receipt.message)
            self.bytes_delivered_total += size
            if on_delivered is not None:
                on_delivered(receipt)

    def _proto_counter(self, metrics, kind: str, protocol: str):
        """Cached ``net.delivered`` / ``net.dropped`` counter handle.

        Per-delivery label-key construction inside the registry dominates
        the cost of bumping a counter at city scale; the cache is keyed on
        registry identity so a fresh Observability invalidates it.
        """
        if metrics is not self._metrics_for:
            self._metrics_for = metrics
            self._proto_counters.clear()
        key = (kind, protocol)
        counter = self._proto_counters.get(key)
        if counter is None:
            counter = metrics.counter("net." + kind, protocol=protocol)
            self._proto_counters[key] = counter
        return counter

    def _drop(self, receipt: DeliveryReceipt,
              on_dropped: Optional[Callable[[DeliveryReceipt], None]]) -> None:
        self.messages_dropped += 1
        receipt.dropped = True
        obs = self.loop.observability
        if obs is not None:
            self._proto_counter(obs.metrics, "dropped",
                                receipt.message.protocol).inc()
        if on_dropped is not None:
            on_dropped(receipt)

    def _observe_hop(self, obs, receipt: DeliveryReceipt, link: Link,
                     here: str, there: str, queue_ms: float,
                     arrival: Optional[float], lost: bool):
        """Record one link hop: a transfer span plus per-link series.

        With ``arrival=None`` (a contended bulk hop whose finish time is
        not yet known) the span is returned open; the caller seals it when
        the fair-share engine computes the arrival -- except for lost
        messages, whose drop is synchronous, so their span closes now.
        """
        message = receipt.message
        metrics = obs.metrics
        # Per-link instrument handles are cached on the Link (keyed on
        # registry identity); each path builds its own tuple lazily so a
        # run that never loses a message never materializes loss series.
        if lost:
            cached = link._obs_lost
            if cached is None or cached[0] is not metrics:
                label = f"{link.a}<->{link.b}"
                cached = link._obs_lost = (
                    metrics,
                    metrics.histogram("net.link.queue_ms", link=label),
                    metrics.counter("net.link.lost", link=label))
            cached[1].observe(queue_ms)
            cached[2].inc()
        else:
            cached = link._obs_ok
            if cached is None or cached[0] is not metrics:
                label = f"{link.a}<->{link.b}"
                cached = link._obs_ok = (
                    metrics,
                    metrics.histogram("net.link.queue_ms", link=label),
                    metrics.counter("net.link.bytes", link=label),
                    metrics.counter("net.link.messages", link=label))
            cached[1].observe(queue_ms)
            cached[2].inc(message.size_bytes)
            cached[3].inc()
        tracer = obs.tracer
        if not tracer.enabled:
            return NULL_SPAN
        span = tracer.begin_span(
            "net.transfer", category="net",
            link=f"{link.a}<->{link.b}", hop=f"{here}->{there}",
            protocol=message.protocol,
            bytes=message.size_bytes, bandwidth_mbps=link.bandwidth_mbps,
            latency_ms=link.latency_ms, queue_ms=queue_ms,
            message_id=message.message_id)
        if lost:
            span.annotate(lost=True)
        if arrival is not None:
            # The arrival instant is already known (discrete-event
            # scheduling), so the span is sealed at its future end time.
            span.end(at=arrival)
        elif lost:
            span.end()
        return span

    def _observe_contention(self, obs, link: Link) -> None:
        """Sample the contention gauges for one link.

        Only emitted while bulk flows actually contend, so uncontended
        runs (including the frozen goldens) record no new series.
        """
        label = f"{link.a}<->{link.b}"
        metrics = obs.metrics
        metrics.gauge("net.link.queue_depth", link=label).set(
            link.bulk_queue_depth())
        now = self.loop.now
        if now > 0:
            for cls, busy in link.class_busy_ms.items():
                metrics.gauge("net.link.utilization", link=label,
                              **{"class": cls}).set(min(1.0, busy / now))

    def _forward(self, receipt: DeliveryReceipt, path: List[str], hop_index: int,
                 on_delivered: Optional[Callable[[DeliveryReceipt], None]],
                 on_dropped: Optional[Callable[[DeliveryReceipt], None]]) -> None:
        here, there = path[hop_index], path[hop_index + 1]
        if hop_index > 0:
            # Arrived at a relay: the previous hop's bytes are off the wire
            # whether or not this host can forward them onward.
            self.bytes_off_wire += receipt.message.size_bytes
        if hop_index > 0 and not self._hosts[here].online:
            # The relay crashed while the message was in flight towards it
            # (store-and-forward: an offline gateway loses the message).
            self._drop(receipt, on_dropped)
            return
        link = self.link_between(here, there)
        if link is None:
            # The route was computed at send time; the next hop has since
            # been disconnected (e.g. a link-down fault mid-path).
            self._drop(receipt, on_dropped)
            return
        if traffic_class(receipt.message.protocol) == BULK:
            self._forward_bulk(receipt, link, path, hop_index, here, there,
                               on_delivered, on_dropped)
            return
        queue_ms = max(0.0, link.busy_until - self.loop.now)
        arrival, lost = link.schedule_transfer(
            self.loop.now, receipt.message.size_bytes, self.rng)
        obs = self.loop.observability
        if obs is not None:
            self._observe_hop(obs, receipt, link, here, there, queue_ms,
                              arrival, lost)
        if lost:
            # A lossy-link loss is synchronous, but the phantom occupied
            # the wire (busy_until advanced), so it enters and leaves the
            # ledger in one step -- bytes_on_wire balances under loss.
            self.bytes_on_wire += receipt.message.size_bytes
            self.bytes_off_wire += receipt.message.size_bytes
            self._drop(receipt, on_dropped)
            return
        receipt.hops += 1
        self.bytes_on_wire += receipt.message.size_bytes
        if hop_index + 2 == len(path):
            timer = self.loop.call_at(arrival, self._deliver, receipt,
                                      on_delivered, on_dropped)
        else:
            delay = self._forward_delay.get(there, 0.0)
            timer = self.loop.call_at(arrival + delay, self._forward, receipt,
                                      path, hop_index + 1, on_delivered,
                                      on_dropped)
        entries = self._in_flight.setdefault(link, [])
        entries[:] = [e for e in entries if e[0].active]
        entries.append((timer, receipt, on_dropped))

    def _forward_bulk(self, receipt: DeliveryReceipt, link: Link,
                      path: List[str], hop_index: int, here: str, there: str,
                      on_delivered: Optional[Callable[[DeliveryReceipt], None]],
                      on_dropped: Optional[Callable[[DeliveryReceipt], None]]
                      ) -> None:
        """One hop of a bulk-class message through the fair-share lane.

        The delivery/forward event is booked by a dispatch closure so the
        engine can invoke it either synchronously (uncontended: arithmetic
        identical to the exclusive-reservation model, same kernel event
        pattern) or from its completion tick once contention resolves the
        finish time.
        """
        message = receipt.message
        size = message.size_bytes
        flow_key = (message.source, message.destination)
        queue_ms = link.bulk_queue_ms(flow_key, self.loop.now)
        if hop_index + 2 == len(path):
            def dispatch(arrival: float):
                return self.loop.call_at(arrival, self._deliver, receipt,
                                         on_delivered, on_dropped)
        else:
            forward_delay = self._forward_delay.get(there, 0.0)

            def dispatch(arrival: float):
                return self.loop.call_at(arrival + forward_delay,
                                         self._forward, receipt, path,
                                         hop_index + 1, on_delivered,
                                         on_dropped)
        obs = self.loop.observability
        seal: Dict[str, Any] = {}

        def on_arrival(arrival: float) -> None:
            span = seal.get("span")
            if span is not None and not seal.get("done"):
                seal["done"] = True
                span.end(at=arrival)

        arrival, lost = link.enqueue_bulk(
            self.loop, self.loop.now, flow_key, size, self.rng, dispatch,
            receipt=receipt, on_dropped=on_dropped,
            on_arrival=on_arrival if obs is not None else None)
        if obs is not None:
            span = self._observe_hop(obs, receipt, link, here, there,
                                     queue_ms, arrival, lost)
            if arrival is not None or lost:
                seal["done"] = True
            else:
                seal["span"] = span
            if link.bulk_contended:
                self._observe_contention(obs, link)
        if lost:
            # Synchronous drop (legacy timing); the phantom still burns its
            # wire time in the flow queue, so ledger in-and-out as above.
            self.bytes_on_wire += size
            self.bytes_off_wire += size
            self._drop(receipt, on_dropped)
            return
        receipt.hops += 1
        self.bytes_on_wire += size

    def _deliver(self, receipt: DeliveryReceipt,
                 on_delivered: Optional[Callable[[DeliveryReceipt], None]],
                 on_dropped: Optional[Callable[[DeliveryReceipt], None]] = None
                 ) -> None:
        dst = self._hosts[receipt.message.destination]
        if receipt.hops:
            # Came in over a link (hops == 0 means local delivery).
            self.bytes_off_wire += receipt.message.size_bytes
        if not dst.online:
            self._drop(receipt, on_dropped)
            return
        receipt.delivered = True
        receipt.delivered_at = self.loop.now
        obs = self.loop.observability
        if obs is not None:
            self._proto_counter(obs.metrics, "delivered",
                                receipt.message.protocol).inc()
        dst.deliver(receipt.message)
        self.bytes_delivered_total += receipt.message.size_bytes
        if on_delivered is not None:
            on_delivered(receipt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network hosts={len(self._hosts)} links={len(self._links)}>"
