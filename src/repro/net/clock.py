"""Per-host clocks with skew and drift.

The paper measures migration across two hosts whose clocks are *not*
synchronized, and cancels the unknown offset with a round-trip sum (Fig. 7)::

    T2@H2 - T1@H1 + T4@H1 - T3@H2  ==  (T2 - T1) + (T4 - T3) measured on one clock

because "the difference of time values of clocks at the same time is nearly a
constant value" (stable crystal frequency).  :class:`HostClock` models exactly
that: a constant offset (skew) plus an optional small frequency drift, so the
correction -- and its failure mode under drift -- can be studied.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.kernel import EventLoop


class HostClock:
    """A host-local clock derived from the global simulated time.

    ``local = true_time * (1 + drift_ppm * 1e-6) + skew_ms``

    With ``drift_ppm == 0`` the offset between two HostClocks is exactly
    constant, which is the paper's assumption.
    """

    def __init__(self, loop: EventLoop, skew_ms: float = 0.0, drift_ppm: float = 0.0):
        self._loop = loop
        self.skew_ms = float(skew_ms)
        self.drift_ppm = float(drift_ppm)
        #: Highest value this clock has ever returned; with a constant skew
        #: and non-negative drift the clock is monotone, so a regression
        #: means someone moved ``skew_ms`` backwards (a clock_jump fault or
        #: an NTP-style step correction).
        self.last_reading: Optional[float] = None
        #: Called as ``on_regress(clock, previous, current)`` when a read
        #: returns less than the previous read.  Observation seam for
        #: monotonicity checkers; the regression is reported, not repaired.
        self.on_regress: Optional[
            Callable[["HostClock", float, float], None]] = None

    def now(self) -> float:
        """Current host-local time in milliseconds."""
        true = self._loop.now
        local = true * (1.0 + self.drift_ppm * 1e-6) + self.skew_ms
        last = self.last_reading
        if last is not None and local < last and self.on_regress is not None:
            self.on_regress(self, last, local)
        self.last_reading = local
        return local

    def offset_from(self, other: "HostClock") -> float:
        """Instantaneous offset ``self.now() - other.now()``."""
        return self.now() - other.now()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HostClock skew={self.skew_ms:+.3f}ms drift={self.drift_ppm:+.1f}ppm>"


def round_trip_cost(t1_at_h1: float, t2_at_h2: float, t3_at_h2: float, t4_at_h1: float) -> float:
    """Fig. 7 skew-cancelling round-trip migration cost.

    ``t1`` = departure from H1 (H1 clock), ``t2`` = arrival at H2 (H2 clock),
    ``t3`` = departure from H2 (H2 clock), ``t4`` = arrival back at H1 (H1
    clock).  The returned sum of the two one-way costs is independent of the
    constant offset between the two clocks:

    ``(T2@H2 - T1@H1) + (T4@H1 - T3@H2) == (T2 - T1) + (T4 - T3)`` on any
    single reference clock.
    """
    return (t2_at_h2 - t1_at_h1) + (t4_at_h1 - t3_at_h2)


def one_way_estimate(t1_at_h1: float, t2_at_h2: float, t3_at_h2: float, t4_at_h1: float) -> float:
    """Symmetric-path estimate of a single one-way migration cost.

    Half the round-trip sum; exact when the outbound and return transfers
    cost the same, which holds for equal payloads on a symmetric link.
    """
    return round_trip_cost(t1_at_h1, t2_at_h2, t3_at_h2, t4_at_h1) / 2.0
