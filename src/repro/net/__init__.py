"""Simulated network substrate for the MDAgent middleware.

This package replaces the physical testbed used in the paper (two PCs on a
10 Mbps Ethernet, Cricket sensor network, inter-space gateways) with a
deterministic discrete-event simulation:

- :mod:`repro.net.kernel` -- the event loop driving simulated time.
- :mod:`repro.net.clock` -- per-host clocks with skew/drift, used to
  reproduce the paper's Fig. 7 round-trip timing correction.
- :mod:`repro.net.simnet` -- hosts, links (latency + bandwidth) and
  byte-accurate message delivery.
- :mod:`repro.net.topology` -- smart spaces and inter-space gateways.

All times are in **milliseconds** of simulated time and all payload sizes in
**bytes**, matching the units the paper reports.
"""

from repro.net.clock import HostClock, round_trip_cost
from repro.net.kernel import EventLoop, SimulationError, Timer
from repro.net.simnet import (
    DeliveryReceipt,
    Host,
    Link,
    Message,
    Network,
    NetworkError,
    UnreachableHostError,
)
from repro.net.topology import Gateway, SmartSpace, Topology, TopologyError

__all__ = [
    "DeliveryReceipt",
    "EventLoop",
    "Gateway",
    "Host",
    "HostClock",
    "Link",
    "Message",
    "Network",
    "NetworkError",
    "SimulationError",
    "SmartSpace",
    "Timer",
    "Topology",
    "TopologyError",
    "UnreachableHostError",
    "round_trip_cost",
]
